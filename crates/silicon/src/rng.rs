//! Seeded samplers for the statistical models.
//!
//! `rand` 0.8 ships only uniform distributions; the normal, lognormal and
//! Poisson samplers the models need are implemented here so that the
//! workspace stays within its declared dependency set. All samplers take
//! `&mut impl Rng` so experiments remain reproducible from a single seed.

use rand::Rng;

/// Samples a normal deviate `N(mean, sigma²)` via the Box–Muller
/// transform.
///
/// # Panics
///
/// Panics if `sigma` is negative or non-finite.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use uniserver_silicon::rng::normal;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = normal(&mut rng, 10.0, 0.0);
/// assert_eq!(x, 10.0); // zero sigma is deterministic
/// ```
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be finite and non-negative, got {sigma}");
    if sigma == 0.0 {
        return mean;
    }
    // Box–Muller; u1 in (0,1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + sigma * z
}

/// Samples a normal deviate truncated to `[lo, hi]` by rejection (falls
/// back to clamping after 64 rejections, which only triggers for extreme
/// truncations).
///
/// # Panics
///
/// Panics if `lo > hi` or `sigma` is negative.
pub fn truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(lo <= hi, "invalid truncation interval [{lo}, {hi}]");
    for _ in 0..64 {
        let x = normal(rng, mean, sigma);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    normal(rng, mean, sigma).clamp(lo, hi)
}

/// Samples a half-normal deviate `|N(0, sigma²)|`.
pub fn half_normal<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    normal(rng, 0.0, sigma).abs()
}

/// Samples a lognormal deviate: `exp(N(mu_ln, sigma_ln²))`.
///
/// `mu_ln`/`sigma_ln` are the parameters of the underlying normal (natural
/// log scale), matching how the DRAM retention literature reports fits.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu_ln: f64, sigma_ln: f64) -> f64 {
    normal(rng, mu_ln, sigma_ln).exp()
}

/// Samples a Poisson-distributed count with the given rate.
///
/// Uses Knuth's product method for small rates and a rounded-normal
/// approximation above 30, which is accurate to within the model noise.
///
/// # Panics
///
/// Panics if `lambda` is negative or non-finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda.is_finite() && lambda >= 0.0, "lambda must be finite and non-negative, got {lambda}");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let x = normal(rng, lambda, lambda.sqrt());
        return x.round().max(0.0) as u64;
    }
    let limit = (-lambda).exp();
    let mut product: f64 = rng.gen();
    let mut count = 0u64;
    while product > limit {
        product *= rng.gen::<f64>();
        count += 1;
    }
    count
}

/// SplitMix64 finalizer: a cheap stateless mixer for deriving
/// independent seeds/words from an index (also the xoshiro seeding
/// recommended by its authors). The single workspace copy — pattern
/// generators and the fleet driver both key their streams off it.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent seed for item `index` of a family keyed by
/// `family_seed` — the SplitMix64-finalized derivation the fleet and
/// cluster drivers use for per-node silicon, so shard boundaries and
/// thread schedules can never shift a node's identity.
#[must_use]
pub fn indexed_seed(family_seed: u64, index: usize) -> u64 {
    splitmix64(family_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Sub-stream salts for the per-node heterogeneity knobs. Each knob gets
/// its own SplitMix64 sub-stream off the node seed, so adding a knob
/// never shifts another knob's draw. These are the single workspace
/// copies — the fleet driver, the cluster's part mix and the
/// orchestrator's ambient spread all salt with the same constants, which
/// is what keeps "a rack and a fleet built from one seed agree on every
/// per-node draw" true across crates.
pub mod salt {
    /// Part draw from a weighted mix.
    pub const PART: u64 = 0x9A97_1BD5_2C1E_0FF1;
    /// Guest-set (workload mix) pick.
    pub const MIX: u64 = 0x3C6E_F372_FE94_F82B;
    /// Ambient-temperature spread.
    pub const AMBIENT: u64 = 0x1F83_D9AB_FB41_BD6B;
    /// Mean-time-to-repair draw for a crashed node's offline window.
    pub const MTTR: u64 = 0x5BE0_CD19_137E_2179;
    /// Independent per-node chaos crash draws.
    pub const CHAOS: u64 = 0x510E_527F_ADE6_82D1;
    /// Rack/PSU blast-radius start draw of a correlated chaos failure.
    pub const CHAOS_RACK: u64 = 0x6A09_E667_F3BC_C908;
    /// Gray-failure onset + duration draws (degraded, not crashed).
    pub const GRAY: u64 = 0xBB67_AE85_84CA_A73B;
    /// Health-watchdog probe draws against a possibly-degraded node.
    pub const PROBE: u64 = 0xA54F_F53A_5F1D_36F1;
}

/// Maps a 64-bit word onto `[0, 1)` using its top 53 bits — the single
/// workspace copy of the mapping every seeded per-node knob (part draw,
/// ambient spread) uses, so fleet and cluster drivers cannot drift.
#[must_use]
pub fn unit_fraction(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The per-node ambient-temperature offset (°C) for a node seed and a
/// uniform spread half-width — the single workspace copy of the draw,
/// so the fleet driver and the cluster orchestrator always hand the
/// same node the same ambient.
#[must_use]
pub fn ambient_offset(node_seed: u64, half_width: f64) -> f64 {
    (2.0 * unit_fraction(splitmix64(node_seed ^ salt::AMBIENT)) - 1.0) * half_width
}

/// Picks an index from `weights` proportionally to the weights, using a
/// single 64-bit word of randomness (e.g. a [`splitmix64`] draw). A pure
/// function of `(x, weights)`, so seeded fleet/cluster drivers can draw
/// per-node parts without threading an RNG through.
///
/// # Panics
///
/// Panics if `weights` is empty or does not sum to a positive total.
#[must_use]
pub fn weighted_pick(x: u64, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weighted_pick needs at least one weight");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive total, got {total}");
    let mut r = unit_fraction(x) * total;
    for (i, w) in weights.iter().enumerate() {
        if r < *w {
            return i;
        }
        r -= w;
    }
    weights.len() - 1
}

/// Samples `true` with probability `p` (clamped into `[0, 1]`).
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p.clamp(0.0, 1.0)
}

/// Samples an exponential deviate with the given mean.
///
/// # Panics
///
/// Panics if `mean` is non-positive or non-finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean.is_finite() && mean > 0.0, "mean must be finite and positive, got {mean}");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5EED)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut r = rng();
        for _ in 0..2_000 {
            let x = truncated_normal(&mut r, 0.0, 1.0, -0.5, 0.5);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn half_normal_is_non_negative() {
        let mut r = rng();
        assert!((0..2_000).all(|_| half_normal(&mut r, 2.0) >= 0.0));
    }

    #[test]
    fn lognormal_median() {
        let mut r = rng();
        let n = 40_000;
        let mut xs: Vec<f64> = (0..n).map(|_| lognormal(&mut r, 1.0, 0.5)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        // Median of a lognormal is exp(mu).
        assert!((median - 1.0f64.exp()).abs() < 0.1, "median {median}");
    }

    #[test]
    fn poisson_small_rate_mean() {
        let mut r = rng();
        let n = 30_000;
        let total: u64 = (0..n).map(|_| poisson(&mut r, 2.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_rate_uses_normal_approx() {
        let mut r = rng();
        let n = 10_000;
        let total: u64 = (0..n).map(|_| poisson(&mut r, 500.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 500.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_rate_is_zero() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn weighted_pick_tracks_weights() {
        let weights = [6.0, 1.0, 1.0];
        let mut counts = [0usize; 3];
        for i in 0..8_000u64 {
            counts[weighted_pick(splitmix64(i), &weights)] += 1;
        }
        assert!(counts[0] > counts[1] + counts[2], "6:1:1 must be dominated: {counts:?}");
        assert!(counts[1] > 500 && counts[2] > 500, "minor shares must appear: {counts:?}");
        // Pure function: the same word always picks the same index.
        assert_eq!(weighted_pick(12345, &weights), weighted_pick(12345, &weights));
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn weighted_pick_rejects_zero_total() {
        let _ = weighted_pick(1, &[0.0, 0.0]);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        assert!((0..100).all(|_| !bernoulli(&mut r, 0.0)));
        assert!((0..100).all(|_| bernoulli(&mut r, 1.0)));
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 40_000;
        let mean = (0..n).map(|_| exponential(&mut r, 4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn determinism_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..16).map(|_| normal(&mut a, 0.0, 1.0)).collect();
        let ys: Vec<f64> = (0..16).map(|_| normal(&mut b, 0.0, 1.0)).collect();
        assert_eq!(xs, ys);
    }
}
