//! A real SECDED(72,64) extended-Hamming codec.
//!
//! Server DIMMs protect every 64-bit word with 8 check bits: a Hamming
//! code over positions 1..=71 (check bits at the seven powers of two)
//! plus one overall-parity bit, giving single-error correction and
//! double-error detection. The paper leans on exactly this mechanism
//! ("classical ECC-SECDED can handle error rates up to 1e-6", §6.B), so
//! the reproduction implements the code for real rather than flagging
//! errors abstractly: the DRAM and cache models push faulty words through
//! [`Secded72::decode`] and count what the hardware would have counted.
//!
//! # Examples
//!
//! ```
//! use uniserver_silicon::{Secded72, DecodeOutcome};
//!
//! let word = Secded72::encode(0xDEAD_BEEF_CAFE_F00D);
//! // A cosmic ray flips codeword bit 17...
//! let upset = Secded72::flip_bit(word, 17);
//! match Secded72::decode(upset) {
//!     DecodeOutcome::Corrected { data, bit } => {
//!         assert_eq!(data, 0xDEAD_BEEF_CAFE_F00D);
//!         assert_eq!(bit, 17);
//!     }
//!     _ => unreachable!("single errors are always corrected"),
//! }
//! ```

use serde::{Deserialize, Serialize};

/// Number of bits in a codeword.
pub const CODEWORD_BITS: u8 = 72;
/// Number of data bits per codeword.
pub const DATA_BITS: u8 = 64;

/// The SECDED(72,64) codec. Stateless; all methods are associated
/// functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Secded72;

/// Result of decoding a (possibly corrupted) codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeOutcome {
    /// No error was present.
    Clean {
        /// The decoded data word.
        data: u64,
    },
    /// A single-bit error was corrected (a *CE* in RAS terms).
    Corrected {
        /// The decoded data word, after correction.
        data: u64,
        /// The codeword bit (0..72) that was repaired.
        bit: u8,
    },
    /// A double-bit (or worse, odd-aliasing) error was detected but not
    /// correctable (a *UE* in RAS terms).
    Uncorrectable,
}

impl DecodeOutcome {
    /// The recovered data, if the word was usable.
    #[must_use]
    pub fn data(self) -> Option<u64> {
        match self {
            DecodeOutcome::Clean { data } | DecodeOutcome::Corrected { data, .. } => Some(data),
            DecodeOutcome::Uncorrectable => None,
        }
    }

    /// Whether the outcome counts as a corrected error.
    #[must_use]
    pub fn is_corrected(self) -> bool {
        matches!(self, DecodeOutcome::Corrected { .. })
    }
}

/// Codeword layout: bit 0 of the `u128` is the overall parity; bits
/// 1..=71 are the Hamming positions (check bits at 1, 2, 4, 8, 16, 32,
/// 64; data at the remaining 64 positions).
const CHECK_POSITIONS: [u8; 7] = [1, 2, 4, 8, 16, 32, 64];

impl Secded72 {
    /// Encodes a 64-bit data word into a 72-bit codeword (stored in the
    /// low 72 bits of a `u128`).
    #[must_use]
    pub fn encode(data: u64) -> u128 {
        let mut word: u128 = 0;
        // Scatter data bits into non-power-of-two positions 3, 5, 6, ...
        let mut data_idx = 0u8;
        for pos in 1u8..=71 {
            if pos.is_power_of_two() {
                continue;
            }
            if (data >> data_idx) & 1 == 1 {
                word |= 1u128 << pos;
            }
            data_idx += 1;
        }
        debug_assert_eq!(data_idx, DATA_BITS);
        // Hamming check bits: parity over every position with bit k set.
        for &k in &CHECK_POSITIONS {
            let mut parity = 0u8;
            for pos in 1u8..=71 {
                if pos & k != 0 && (word >> pos) & 1 == 1 {
                    parity ^= 1;
                }
            }
            if parity == 1 {
                word |= 1u128 << k;
            }
        }
        // Overall parity over positions 1..=71 goes to bit 0.
        if (word.count_ones() & 1) == 1 {
            word |= 1;
        }
        word
    }

    /// Decodes a codeword, correcting a single-bit error and detecting
    /// double-bit errors.
    #[must_use]
    pub fn decode(word: u128) -> DecodeOutcome {
        let mut syndrome = 0u8;
        for &k in &CHECK_POSITIONS {
            let mut parity = 0u8;
            for pos in 1u8..=71 {
                if pos & k != 0 && (word >> pos) & 1 == 1 {
                    parity ^= 1;
                }
            }
            if parity == 1 {
                syndrome |= k;
            }
        }
        let overall_odd = (word.count_ones() & 1) == 1;

        match (syndrome, overall_odd) {
            (0, false) => DecodeOutcome::Clean { data: Self::extract(word) },
            (0, true) => {
                // The overall-parity bit itself flipped; data is intact.
                DecodeOutcome::Corrected { data: Self::extract(word), bit: 0 }
            }
            (s, true) => {
                if s > 71 {
                    // Syndrome points outside the codeword: multi-bit
                    // corruption aliasing as odd parity.
                    return DecodeOutcome::Uncorrectable;
                }
                let fixed = word ^ (1u128 << s);
                DecodeOutcome::Corrected { data: Self::extract(fixed), bit: s }
            }
            // Even overall parity with a non-zero syndrome: two flips.
            (_, false) => DecodeOutcome::Uncorrectable,
        }
    }

    /// Flips one bit (0..72) of a codeword — the fault-injection
    /// primitive used by the DRAM and cache models.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 72`.
    #[must_use]
    pub fn flip_bit(word: u128, bit: u8) -> u128 {
        assert!(bit < CODEWORD_BITS, "codeword bit must be below {CODEWORD_BITS}, got {bit}");
        word ^ (1u128 << bit)
    }

    /// Extracts the 64 data bits from a (corrected) codeword.
    fn extract(word: u128) -> u64 {
        let mut data = 0u64;
        let mut data_idx = 0u8;
        for pos in 1u8..=71 {
            if pos.is_power_of_two() {
                continue;
            }
            if (word >> pos) & 1 == 1 {
                data |= 1u64 << data_idx;
            }
            data_idx += 1;
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        for data in [0u64, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1, 1 << 63] {
            let w = Secded72::encode(data);
            assert!(w >> CODEWORD_BITS == 0, "codeword must fit in 72 bits");
            assert_eq!(Secded72::decode(w), DecodeOutcome::Clean { data });
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        let data = 0xA5A5_5A5A_0F0F_F0F0u64;
        let w = Secded72::encode(data);
        for bit in 0..CODEWORD_BITS {
            let upset = Secded72::flip_bit(w, bit);
            match Secded72::decode(upset) {
                DecodeOutcome::Corrected { data: d, bit: b } => {
                    assert_eq!(d, data, "data recovered after flip of bit {bit}");
                    assert_eq!(b, bit, "correction must identify the flipped bit");
                }
                other => panic!("bit {bit}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_double_bit_error_is_detected() {
        let data = 0x0123_4567_89AB_CDEFu64;
        let w = Secded72::encode(data);
        for b1 in 0..CODEWORD_BITS {
            for b2 in (b1 + 1)..CODEWORD_BITS {
                let upset = Secded72::flip_bit(Secded72::flip_bit(w, b1), b2);
                assert_eq!(
                    Secded72::decode(upset),
                    DecodeOutcome::Uncorrectable,
                    "double flip ({b1}, {b2}) must be detected"
                );
            }
        }
    }

    #[test]
    fn outcome_accessors() {
        let data = 42u64;
        let w = Secded72::encode(data);
        assert_eq!(Secded72::decode(w).data(), Some(42));
        assert!(!Secded72::decode(w).is_corrected());
        let upset = Secded72::flip_bit(w, 9);
        assert!(Secded72::decode(upset).is_corrected());
        assert_eq!(DecodeOutcome::Uncorrectable.data(), None);
    }

    #[test]
    #[should_panic(expected = "below 72")]
    fn flip_out_of_range_panics() {
        let _ = Secded72::flip_bit(0, 72);
    }

    #[test]
    fn distinct_data_distinct_codewords() {
        // Spot-check injectivity over a structured sample.
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            let d = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            assert!(seen.insert(Secded72::encode(d)), "collision at {d:#x}");
        }
    }

    #[cfg(test)]
    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip(data: u64) {
                prop_assert_eq!(Secded72::decode(Secded72::encode(data)), DecodeOutcome::Clean { data });
            }

            #[test]
            fn single_flip_corrects(data: u64, bit in 0u8..72) {
                let upset = Secded72::flip_bit(Secded72::encode(data), bit);
                match Secded72::decode(upset) {
                    DecodeOutcome::Corrected { data: d, bit: b } => {
                        prop_assert_eq!(d, data);
                        prop_assert_eq!(b, bit);
                    }
                    other => prop_assert!(false, "expected correction, got {:?}", other),
                }
            }

            #[test]
            fn double_flip_detects(data: u64, b1 in 0u8..72, b2 in 0u8..72) {
                prop_assume!(b1 != b2);
                let upset = Secded72::flip_bit(Secded72::flip_bit(Secded72::encode(data), b1), b2);
                prop_assert_eq!(Secded72::decode(upset), DecodeOutcome::Uncorrectable);
            }
        }
    }
}
