//! Transistor aging: Vmin drift over deployment time.
//!
//! The paper's StressLog daemon exists because safe margins are not
//! static — "these new values may need to be updated several times over
//! the lifetime of a server due to the aging effects of the machine"
//! (§3.D). NBTI/PBTI-style aging follows a sub-linear power law in time:
//! `ΔVmin(t) = A · t^n` with `n ≈ 0.2–0.25`, fast at first and slowing
//! down, which is why periodic re-characterization (every 2–3 months)
//! works.

use serde::{Deserialize, Serialize};
use uniserver_units::Volts;

/// Power-law Vmin drift model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgingModel {
    /// Drift coefficient in millivolts (drift after one month).
    pub coeff_mv: f64,
    /// Time exponent of the power law.
    pub time_exponent: f64,
}

impl AgingModel {
    /// Typical NBTI-dominated drift: ~8 mV after the first month,
    /// ~20 mV after three years.
    #[must_use]
    pub fn typical_nbti() -> Self {
        AgingModel { coeff_mv: 8.0, time_exponent: 0.25 }
    }

    /// Vmin drift after `months` of deployment, in millivolts.
    ///
    /// # Panics
    ///
    /// Panics if `months` is negative.
    #[must_use]
    pub fn drift_mv(&self, months: f64) -> f64 {
        assert!(months >= 0.0, "deployment time must be non-negative, got {months}");
        self.coeff_mv * months.powf(self.time_exponent)
    }

    /// The aged crash voltage: manufacturing-time crash voltage plus the
    /// accumulated drift.
    #[must_use]
    pub fn aged_crash_voltage(&self, fresh: Volts, months: f64) -> Volts {
        fresh + Volts::from_millivolts(self.drift_mv(months))
    }

    /// Additional drift accumulated between two points in time — what a
    /// re-characterization at `from_months` fails to cover by
    /// `to_months`. Drives the choice of the StressLog period.
    #[must_use]
    pub fn drift_between_mv(&self, from_months: f64, to_months: f64) -> f64 {
        assert!(from_months <= to_months, "interval must be ordered");
        self.drift_mv(to_months) - self.drift_mv(from_months)
    }
}

impl Default for AgingModel {
    fn default() -> Self {
        AgingModel::typical_nbti()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_is_monotonic_and_sublinear() {
        let m = AgingModel::typical_nbti();
        let d1 = m.drift_mv(1.0);
        let d4 = m.drift_mv(4.0);
        let d16 = m.drift_mv(16.0);
        assert!(d1 < d4 && d4 < d16);
        // Power law with n = 0.25: quadrupling time multiplies drift by sqrt(2).
        assert!((d4 / d1 - 2f64.powf(0.5)).abs() < 1e-9);
        assert!((d16 / d4 - 2f64.powf(0.5)).abs() < 1e-9);
    }

    #[test]
    fn three_year_drift_is_tens_of_millivolts() {
        let d = AgingModel::typical_nbti().drift_mv(36.0);
        assert!((15.0..30.0).contains(&d), "3-year drift {d} mV");
    }

    #[test]
    fn aged_crash_voltage_rises() {
        let m = AgingModel::typical_nbti();
        let fresh = Volts::new(0.760);
        let aged = m.aged_crash_voltage(fresh, 24.0);
        assert!(aged > fresh);
        assert!(aged.as_millivolts() - fresh.as_millivolts() < 30.0);
    }

    #[test]
    fn later_recharacterization_intervals_drift_less() {
        let m = AgingModel::typical_nbti();
        // The same 3-month window drifts less the older the machine is —
        // the rationale for a fixed re-characterization period being safe.
        let early = m.drift_between_mv(0.0, 3.0);
        let late = m.drift_between_mv(24.0, 27.0);
        assert!(late < early / 3.0, "early {early} vs late {late}");
    }

    #[test]
    fn zero_time_means_zero_drift() {
        assert_eq!(AgingModel::typical_nbti().drift_mv(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        let _ = AgingModel::typical_nbti().drift_mv(-1.0);
    }
}
