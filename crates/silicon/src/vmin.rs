//! Per-core minimum-voltage (crash point) and cache ECC-onset models.
//!
//! This is the behavioural core behind Table 2: undervolting a part in
//! small steps produces, per core and per workload, (1) a window where
//! cache SECDED corrections appear and (2) a crash voltage. The model's
//! free parameters are calibrated per part in `uniserver-platform`.

use rand::Rng;
use serde::{Deserialize, Serialize};
use uniserver_units::Volts;

use crate::math::sigmoid;
use crate::rng::{normal, poisson};

/// Crash-point and cache-error model for one part type.
///
/// Conventions: *offsets* are fractions of nominal voltage below nominal
/// (`0.10` = the part crashes 10 % below nominal). A *weak* core (positive
/// manufactured `vmin_offset` in [`crate::variation::CoreProfile`]) crashes
/// earlier, i.e. at a smaller undervolt offset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VminModel {
    /// Mean crash offset of a typical core running a quiet workload.
    pub base_crash_offset: f64,
    /// How much a fully stressful workload (stress scalar = 1) pulls the
    /// crash point towards nominal.
    pub stress_gain: f64,
    /// Amplification of manufactured per-core Vmin offsets.
    pub core_gain: f64,
    /// Interaction: *weak* cores (positive manufactured offset) are
    /// disproportionally sensitive to workload stress, widening the
    /// core-to-core spread under stressful benchmarks. Applied per unit
    /// of positive weakness (scaled ×10 internally since weaknesses are
    /// a few percent); strong cores get no bonus — stress can only pull
    /// crash points towards nominal, never away (§3.B's monotonicity).
    pub stress_core_interaction: f64,
    /// Run-to-run jitter sigma (fraction of nominal).
    pub run_jitter_sigma: f64,
    /// Mean millivolts above the crash point where cache SECDED
    /// corrections start appearing. Negative means the cache keeps
    /// correcting below the core's crash point, so CEs are never observed
    /// (the paper's high-end i7 behaviour).
    pub cache_onset_above_crash_mv: f64,
    /// Sigma of the cache-onset window in millivolts.
    pub cache_onset_sigma_mv: f64,
    /// Cache CE Poisson rate per millivolt below the onset, per run.
    pub cache_ce_rate_per_mv: f64,
    /// Softness of the crash transition in millivolts (for probability
    /// queries near the crash point).
    pub crash_softness_mv: f64,
}

impl VminModel {
    /// Crash offset (fraction below nominal) for one core/workload/run.
    ///
    /// * `core_weakness` — manufactured fractional Vmin offset of the core
    ///   (chip + core components; positive = weaker).
    /// * `stress` — workload stress scalar in `[0, 1]` (see
    ///   [`crate::droop::DroopModel::stress_scalar`]).
    ///
    /// # Panics
    ///
    /// Panics if `stress` lies outside `[0, 1]`.
    pub fn crash_offset<R: Rng + ?Sized>(
        &self,
        core_weakness: f64,
        stress: f64,
        rng: &mut R,
    ) -> f64 {
        assert!((0.0..=1.0).contains(&stress), "stress must be in [0, 1], got {stress}");
        let jitter = normal(rng, 0.0, self.run_jitter_sigma);
        // Stress strictly shrinks the margin; weak cores (positive
        // weakness) are extra stress-sensitive, strong cores are not
        // extra-tolerant (monotonicity of §3.B).
        let stress_sensitivity = self.stress_gain
            * (1.0 + self.stress_core_interaction * 10.0 * core_weakness.max(0.0));
        let offset = self.base_crash_offset
            - stress_sensitivity * stress
            - self.core_gain * core_weakness
            + jitter;
        offset.max(0.005) // a part that crashes above nominal is dead on arrival
    }

    /// Crash voltage for one core/workload/run.
    pub fn crash_voltage<R: Rng + ?Sized>(
        &self,
        nominal: Volts,
        core_weakness: f64,
        stress: f64,
        rng: &mut R,
    ) -> Volts {
        let offset = self.crash_offset(core_weakness, stress, rng);
        nominal.scaled(1.0 - offset)
    }

    /// Voltage at which cache SECDED corrections begin for a bank, given
    /// the core crash voltage of the same run. May be *below* the crash
    /// voltage (then CEs are never observable on this part).
    pub fn cache_onset_voltage<R: Rng + ?Sized>(
        &self,
        crash: Volts,
        bank_weakness: f64,
        rng: &mut R,
    ) -> Volts {
        let window_mv = normal(rng, self.cache_onset_above_crash_mv, self.cache_onset_sigma_mv)
            + bank_weakness * 1000.0;
        let onset_mv = crash.as_millivolts() + window_mv;
        Volts::from_millivolts(onset_mv.max(0.0))
    }

    /// Number of cache corrected errors observed during one run at supply
    /// `v`, given the bank's onset voltage. Zero at or above the onset;
    /// Poisson with a rate growing linearly below it.
    pub fn cache_ce_count<R: Rng + ?Sized>(&self, v: Volts, onset: Volts, rng: &mut R) -> u64 {
        if v >= onset {
            return 0;
        }
        let depth_mv = onset.as_millivolts() - v.as_millivolts();
        poisson(rng, self.cache_ce_rate_per_mv * depth_mv)
    }

    /// Probability that a run at supply `v` crashes, given the run's crash
    /// voltage. A soft transition (width [`VminModel::crash_softness_mv`])
    /// models metastability right at the edge; the predictor trains on
    /// this curve's samples.
    #[must_use]
    pub fn crash_probability(&self, v: Volts, crash: Volts) -> f64 {
        let x = (crash.as_millivolts() - v.as_millivolts()) / self.crash_softness_mv;
        sigmoid(x)
    }
}

impl Default for VminModel {
    /// A mid-range server part: ~12 % quiet-workload margin.
    fn default() -> Self {
        VminModel {
            base_crash_offset: 0.12,
            stress_gain: 0.03,
            core_gain: 1.0,
            stress_core_interaction: 0.5,
            run_jitter_sigma: 0.002,
            cache_onset_above_crash_mv: 15.0,
            cache_onset_sigma_mv: 3.0,
            cache_ce_rate_per_mv: 0.5,
            crash_softness_mv: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn stress_pulls_crash_point_towards_nominal() {
        let m = VminModel::default();
        let mut r = rng();
        let quiet: f64 =
            (0..200).map(|_| m.crash_offset(0.0, 0.0, &mut r)).sum::<f64>() / 200.0;
        let loud: f64 = (0..200).map(|_| m.crash_offset(0.0, 1.0, &mut r)).sum::<f64>() / 200.0;
        assert!(loud < quiet, "stressed {loud} should crash earlier than quiet {quiet}");
        assert!((quiet - loud - m.stress_gain).abs() < 0.005);
    }

    #[test]
    fn weak_cores_crash_earlier() {
        let m = VminModel::default();
        let mut r = rng();
        let strong: f64 =
            (0..200).map(|_| m.crash_offset(-0.02, 0.5, &mut r)).sum::<f64>() / 200.0;
        let weak: f64 = (0..200).map(|_| m.crash_offset(0.02, 0.5, &mut r)).sum::<f64>() / 200.0;
        assert!(weak < strong);
    }

    #[test]
    fn crash_voltage_is_below_nominal() {
        let m = VminModel::default();
        let mut r = rng();
        let nominal = Volts::new(0.844);
        for _ in 0..100 {
            let v = m.crash_voltage(nominal, 0.0, 0.3, &mut r);
            assert!(v < nominal);
            assert!(v.as_volts() > 0.6 * nominal.as_volts());
        }
    }

    #[test]
    fn cache_ces_appear_only_below_onset() {
        let m = VminModel::default();
        let mut r = rng();
        let onset = Volts::from_millivolts(760.0);
        assert_eq!(m.cache_ce_count(Volts::from_millivolts(765.0), onset, &mut r), 0);
        assert_eq!(m.cache_ce_count(onset, onset, &mut r), 0);
        let below: u64 =
            (0..50).map(|_| m.cache_ce_count(Volts::from_millivolts(745.0), onset, &mut r)).sum();
        assert!(below > 0, "expected some CEs below onset");
    }

    #[test]
    fn ce_rate_grows_with_depth() {
        let m = VminModel::default();
        let mut r = rng();
        let onset = Volts::from_millivolts(800.0);
        let shallow: u64 =
            (0..300).map(|_| m.cache_ce_count(Volts::from_millivolts(795.0), onset, &mut r)).sum();
        let deep: u64 =
            (0..300).map(|_| m.cache_ce_count(Volts::from_millivolts(780.0), onset, &mut r)).sum();
        assert!(deep > shallow);
    }

    #[test]
    fn negative_onset_window_hides_ces() {
        // i7-like part: cache onset below the crash point.
        let m = VminModel { cache_onset_above_crash_mv: -10.0, ..VminModel::default() };
        let mut r = rng();
        let crash = Volts::from_millivolts(1_200.0);
        let onset = m.cache_onset_voltage(crash, 0.0, &mut r);
        // Any observable (above-crash) voltage sees zero CEs.
        let v_above_crash = Volts::from_millivolts(1_205.0);
        assert_eq!(m.cache_ce_count(v_above_crash, onset, &mut r), 0);
    }

    #[test]
    fn crash_probability_is_half_at_crash_point() {
        let m = VminModel::default();
        let crash = Volts::new(0.760);
        assert!((m.crash_probability(crash, crash) - 0.5).abs() < 1e-12);
        assert!(m.crash_probability(Volts::new(0.780), crash) < 0.01);
        assert!(m.crash_probability(Volts::new(0.740), crash) > 0.99);
    }

    #[test]
    #[should_panic(expected = "stress must be in [0, 1]")]
    fn stress_out_of_range_panics() {
        let _ = VminModel::default().crash_offset(0.0, 1.5, &mut rng());
    }
}
