//! Core and DRAM power models.
//!
//! * Core dynamic power follows the classical `C·V²·f·activity` law —
//!   the reason voltage is "the most effective power saving knob" (§1).
//! * Leakage scales super-linearly with voltage and exponentially with
//!   temperature, modulated by the die's manufactured leakage factor.
//! * DRAM module power splits into background, access and refresh parts;
//!   the refresh share grows with chip density (9 % for 2 Gb chips,
//!   ~34 % projected for 32 Gb — §6.B, after RAIDR [26]), and shrinks
//!   proportionally as the refresh interval is relaxed.

use serde::{Deserialize, Serialize};
use uniserver_units::{Celsius, Megahertz, Seconds, Volts, Watts};

/// Per-core power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorePowerModel {
    /// Effective switched capacitance in nanofarads.
    pub ceff_nf: f64,
    /// Leakage at nominal voltage and 25 °C, in watts.
    pub leak_nominal_w: f64,
    /// Exponential leakage growth per °C above 25 °C.
    pub leak_temp_coeff: f64,
    /// Leakage voltage exponent (leakage ∝ (V/Vnom)^exp).
    pub leak_voltage_exp: f64,
}

impl CorePowerModel {
    /// A mobile-class core (the paper's low-end i5-4200U draws ~15 W for
    /// the whole 2-core package).
    #[must_use]
    pub fn mobile_core() -> Self {
        CorePowerModel { ceff_nf: 0.85, leak_nominal_w: 0.9, leak_temp_coeff: 0.013, leak_voltage_exp: 3.0 }
    }

    /// A desktop/server-class core (the i7-3970X: 150 W for 6 cores at
    /// 4 GHz / 1.365 V).
    #[must_use]
    pub fn desktop_core() -> Self {
        CorePowerModel { ceff_nf: 2.6, leak_nominal_w: 3.0, leak_temp_coeff: 0.013, leak_voltage_exp: 3.0 }
    }

    /// Dynamic power at the given operating point.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]`.
    #[must_use]
    pub fn dynamic(&self, v: Volts, f: Megahertz, activity: f64) -> Watts {
        assert!((0.0..=1.0).contains(&activity), "activity must be in [0, 1], got {activity}");
        // P = C·V²·f·α ; C in nF and f in MHz conveniently yield milliwatts.
        let mw = self.ceff_nf * v.as_volts() * v.as_volts() * f.as_mhz() * activity;
        Watts::from_milliwatts(mw)
    }

    /// Leakage power at the given voltage and temperature, for a die with
    /// the given manufactured leakage factor.
    ///
    /// # Panics
    ///
    /// Panics if `vnom` is zero or `leakage_factor` is negative.
    #[must_use]
    pub fn leakage(&self, v: Volts, temp: Celsius, vnom: Volts, leakage_factor: f64) -> Watts {
        assert!(vnom.as_volts() > 0.0, "nominal voltage must be positive");
        assert!(leakage_factor >= 0.0, "leakage factor must be non-negative");
        let v_scale = (v.as_volts() / vnom.as_volts()).powf(self.leak_voltage_exp);
        let t_scale = (self.leak_temp_coeff * temp.delta_above(Celsius::new(25.0))).exp();
        Watts::new(self.leak_nominal_w * leakage_factor * v_scale * t_scale)
    }

    /// Total core power (dynamic + leakage).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn total(
        &self,
        v: Volts,
        f: Megahertz,
        activity: f64,
        temp: Celsius,
        vnom: Volts,
        leakage_factor: f64,
    ) -> Watts {
        self.dynamic(v, f, activity) + self.leakage(v, temp, vnom, leakage_factor)
    }
}

/// DRAM module power model with a density-dependent refresh share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramPowerModel {
    /// DRAM chip density in gigabits (2 for the paper's DDR3 era, 32 for
    /// its projection).
    pub chip_density_gbit: f64,
    /// Total module power at nominal refresh and full utilization.
    pub module_nominal: Watts,
    /// Nominal refresh interval (64 ms for DDR3).
    pub nominal_refresh: Seconds,
    /// Fraction of non-refresh power that is background (independent of
    /// utilization); the rest scales with utilization.
    pub background_fraction: f64,
}

impl DramPowerModel {
    /// An 8 GB DDR3 module built from 2 Gb chips, ~5 W at full tilt.
    #[must_use]
    pub fn ddr3_8gb() -> Self {
        DramPowerModel {
            chip_density_gbit: 2.0,
            module_nominal: Watts::new(5.0),
            nominal_refresh: Seconds::from_millis(64.0),
            background_fraction: 0.4,
        }
    }

    /// A future high-density module from 32 Gb chips (the paper's §6.B
    /// projection where refresh reaches 34 % of module power).
    #[must_use]
    pub fn future_32gbit() -> Self {
        DramPowerModel {
            chip_density_gbit: 32.0,
            module_nominal: Watts::new(8.0),
            nominal_refresh: Seconds::from_millis(64.0),
            background_fraction: 0.4,
        }
    }

    /// Refresh share of module power at nominal refresh. Linear in
    /// log2(density), fitted through the paper's anchors: 9 % at 2 Gb and
    /// 34 % at 32 Gb.
    #[must_use]
    pub fn refresh_share_nominal(&self) -> f64 {
        let share = 6.25 * self.chip_density_gbit.log2() + 2.75;
        (share / 100.0).clamp(0.0, 0.95)
    }

    /// Refresh power at an arbitrary refresh interval: refreshing 78×
    /// less often costs 78× less refresh power.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn refresh_power(&self, interval: Seconds) -> Watts {
        assert!(interval.as_secs() > 0.0, "refresh interval must be positive");
        let nominal_refresh_w = self.module_nominal.as_watts() * self.refresh_share_nominal();
        Watts::new(nominal_refresh_w * self.nominal_refresh.ratio_to(interval))
    }

    /// Total module power at the given refresh interval and utilization.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]` or `interval` is zero.
    #[must_use]
    pub fn module_power(&self, interval: Seconds, utilization: f64) -> Watts {
        assert!((0.0..=1.0).contains(&utilization), "utilization must be in [0, 1], got {utilization}");
        let non_refresh = self.module_nominal.as_watts() * (1.0 - self.refresh_share_nominal());
        let background = non_refresh * self.background_fraction;
        let access = non_refresh * (1.0 - self.background_fraction) * utilization;
        Watts::new(background + access) + self.refresh_power(interval)
    }

    /// Fraction of total module power saved (at full utilization) by
    /// relaxing refresh from nominal to `interval`.
    #[must_use]
    pub fn refresh_saving(&self, interval: Seconds) -> f64 {
        let nominal = self.module_power(self.nominal_refresh, 1.0);
        let relaxed = self.module_power(interval, 1.0);
        (nominal.as_watts() - relaxed.as_watts()) / nominal.as_watts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_power_scales_quadratically_with_voltage() {
        let m = CorePowerModel::desktop_core();
        let f = Megahertz::from_ghz(4.0);
        let hi = m.dynamic(Volts::new(1.2), f, 1.0);
        let lo = m.dynamic(Volts::new(0.6), f, 1.0);
        assert!((hi.as_watts() / lo.as_watts() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn package_power_matches_tdp_classes() {
        // i5-4200U-like: 2 cores at 2.6 GHz / 0.844 V ≈ 15 W class.
        let mobile = CorePowerModel::mobile_core();
        let p_mobile = 2.0
            * mobile
                .total(Volts::new(0.844), Megahertz::from_ghz(2.6), 0.9, Celsius::new(60.0), Volts::new(0.844), 1.0)
                .as_watts();
        assert!((4.0..20.0).contains(&p_mobile), "mobile package {p_mobile} W");

        // i7-3970X-like: 6 cores at 4.0 GHz / 1.365 V ≈ 150 W class.
        let desktop = CorePowerModel::desktop_core();
        let p_desktop = 6.0
            * desktop
                .total(Volts::new(1.365), Megahertz::from_ghz(4.0), 0.9, Celsius::new(70.0), Volts::new(1.365), 1.0)
                .as_watts();
        assert!((90.0..200.0).contains(&p_desktop), "desktop package {p_desktop} W");
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let m = CorePowerModel::desktop_core();
        let v = Volts::new(1.2);
        let cold = m.leakage(v, Celsius::new(25.0), v, 1.0);
        let hot = m.leakage(v, Celsius::new(85.0), v, 1.0);
        assert!(hot.as_watts() > 1.5 * cold.as_watts());
    }

    #[test]
    fn leaky_die_leaks_proportionally() {
        let m = CorePowerModel::desktop_core();
        let v = Volts::new(1.2);
        let typical = m.leakage(v, Celsius::new(25.0), v, 1.0);
        let leaky = m.leakage(v, Celsius::new(25.0), v, 1.8);
        assert!((leaky.as_watts() / typical.as_watts() - 1.8).abs() < 1e-9);
    }

    #[test]
    fn refresh_share_hits_paper_anchors() {
        assert!((DramPowerModel::ddr3_8gb().refresh_share_nominal() - 0.09).abs() < 1e-9);
        assert!((DramPowerModel::future_32gbit().refresh_share_nominal() - 0.34).abs() < 1e-9);
    }

    #[test]
    fn relaxing_refresh_removes_most_refresh_power() {
        let m = DramPowerModel::ddr3_8gb();
        let at_1_5s = m.refresh_power(Seconds::new(1.5));
        let nominal = m.refresh_power(Seconds::from_millis(64.0));
        // 1.5 s is ~23.4× nominal, so refresh power drops by the same factor.
        assert!((nominal.as_watts() / at_1_5s.as_watts() - 1.5 / 0.064).abs() < 1e-6);
    }

    #[test]
    fn module_saving_bounded_by_refresh_share() {
        let m = DramPowerModel::ddr3_8gb();
        let saving = m.refresh_saving(Seconds::new(5.0));
        let share = m.refresh_share_nominal();
        assert!(saving > 0.0 && saving < share, "saving {saving} vs share {share}");
        // Nearly all of the 9 % refresh share is recovered at 5 s.
        assert!(saving > share * 0.95);
    }

    #[test]
    fn high_density_module_saves_more() {
        let old = DramPowerModel::ddr3_8gb().refresh_saving(Seconds::new(1.5));
        let new = DramPowerModel::future_32gbit().refresh_saving(Seconds::new(1.5));
        assert!(new > 3.0 * old, "32 Gb saving {new} should dwarf 2 Gb saving {old}");
    }

    #[test]
    #[should_panic(expected = "activity must be in [0, 1]")]
    fn activity_out_of_range_panics() {
        let _ = CorePowerModel::mobile_core().dynamic(Volts::new(1.0), Megahertz::new(1000.0), 1.5);
    }

    #[test]
    #[should_panic(expected = "utilization must be in [0, 1]")]
    fn utilization_out_of_range_panics() {
        let _ = DramPowerModel::ddr3_8gb().module_power(Seconds::from_millis(64.0), 2.0);
    }
}
