//! Fault taxonomy and bit-level fault primitives.
//!
//! Shared vocabulary for every layer that produces or consumes errors:
//! the platform's machine-check reporting, the HealthLog's error records,
//! the hypervisor's masking logic and the fault-injection campaigns.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Where a fault physically originated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// SRAM (cache) cell upset or low-voltage read failure.
    CacheBit,
    /// DRAM retention failure or particle strike.
    DramBit,
    /// Core logic timing violation (undervolted pipeline).
    CoreLogic,
    /// Uncore/interconnect transient.
    Interconnect,
}

impl FaultKind {
    /// All fault kinds, for iteration in reports.
    pub const ALL: [FaultKind; 4] =
        [FaultKind::CacheBit, FaultKind::DramBit, FaultKind::CoreLogic, FaultKind::Interconnect];

    /// Short label used in log lines and tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::CacheBit => "cache",
            FaultKind::DramBit => "dram",
            FaultKind::CoreLogic => "core",
            FaultKind::Interconnect => "uncore",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the RAS machinery classified an error's effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ErrorSeverity {
    /// Corrected in hardware (CE) — logged, no software impact.
    Corrected,
    /// Detected but uncorrected (UE) — software must contain it.
    Uncorrected,
    /// Fatal — the component (or machine) crashed.
    Fatal,
}

impl ErrorSeverity {
    /// Short label used in log lines and tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ErrorSeverity::Corrected => "CE",
            ErrorSeverity::Uncorrected => "UE",
            ErrorSeverity::Fatal => "FATAL",
        }
    }
}

impl std::fmt::Display for ErrorSeverity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A single-bit flip in a 64-bit word: the SDC primitive used by the
/// QEMU-style injection campaigns (§6.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitFlip {
    /// Bit index in `0..64`.
    pub bit: u8,
}

impl BitFlip {
    /// Creates a flip of the given bit.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    #[must_use]
    pub fn new(bit: u8) -> Self {
        assert!(bit < 64, "bit index must be below 64, got {bit}");
        BitFlip { bit }
    }

    /// Samples a uniformly random flip.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        BitFlip { bit: rng.gen_range(0..64) }
    }

    /// Applies the flip to a word.
    #[must_use]
    pub fn apply(self, word: u64) -> u64 {
        word ^ (1u64 << self.bit)
    }

    /// Whether applying the flip to `word` changes its value (always true
    /// for XOR, kept for symmetry with multi-bit fault types).
    #[must_use]
    pub fn corrupts(self, word: u64) -> bool {
        self.apply(word) != word
    }
}

impl std::fmt::Display for BitFlip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flip(bit {})", self.bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flip_is_involutive() {
        let flip = BitFlip::new(17);
        let w = 0xDEAD_BEEFu64;
        assert_eq!(flip.apply(flip.apply(w)), w);
        assert!(flip.corrupts(w));
    }

    #[test]
    fn random_flips_cover_the_word() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 64];
        for _ in 0..4_000 {
            seen[BitFlip::random(&mut rng).bit as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 64 bit positions should be hit");
    }

    #[test]
    #[should_panic(expected = "below 64")]
    fn out_of_range_flip_panics() {
        let _ = BitFlip::new(64);
    }

    #[test]
    fn severity_is_ordered_by_badness() {
        assert!(ErrorSeverity::Corrected < ErrorSeverity::Uncorrected);
        assert!(ErrorSeverity::Uncorrected < ErrorSeverity::Fatal);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultKind::CacheBit.to_string(), "cache");
        assert_eq!(ErrorSeverity::Fatal.to_string(), "FATAL");
        assert_eq!(FaultKind::ALL.len(), 4);
    }
}
