//! Voltage guard-band decomposition (paper Table 1).
//!
//! Vendors stack margins against worst-case droop (~20 %), Vmin
//! reliability at low voltage (~15 %) and core-to-core variation (~5 %).
//! [`GuardbandBreakdown::industry_practice`] returns the paper's quoted
//! numbers; [`measure`] re-derives comparable numbers from this crate's
//! own models so Table 1 can be *regenerated* rather than transcribed.

use rand::Rng;
use serde::{Deserialize, Serialize};
use uniserver_units::Ratio;

use crate::droop::DroopModel;
use crate::variation::VariationParams;
use crate::vmin::VminModel;

/// The sources of voltage guard-band and their magnitudes as fractions of
/// nominal voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardbandBreakdown {
    /// Margin held against worst-case supply droop.
    pub voltage_droops: Ratio,
    /// Margin held against functional failure at low voltage (Vmin).
    pub vmin: Ratio,
    /// Margin held against core-to-core variation.
    pub core_to_core: Ratio,
}

impl GuardbandBreakdown {
    /// The values quoted in Table 1 of the paper.
    #[must_use]
    pub fn industry_practice() -> Self {
        GuardbandBreakdown {
            voltage_droops: Ratio::from_percent(20.0),
            vmin: Ratio::from_percent(15.0),
            core_to_core: Ratio::from_percent(5.0),
        }
    }

    /// Total voltage up-scaling a conservative design pays, as a fraction
    /// of nominal (simple sum — the sources stack).
    #[must_use]
    pub fn total(&self) -> Ratio {
        Ratio::new(self.voltage_droops.value() + self.vmin.value() + self.core_to_core.value())
    }

    /// Rows for rendering the table: (source, up-scaling).
    #[must_use]
    pub fn rows(&self) -> [(&'static str, Ratio); 3] {
        [
            ("Voltage droops", self.voltage_droops),
            ("Vmin", self.vmin),
            ("Core-to-core variations", self.core_to_core),
        ]
    }
}

/// Re-measures the guard-band decomposition from the behavioural models:
///
/// * **droop** — the ceiling of the droop model (what a perfect virus
///   provokes, which is what the worst-case margin protects against);
/// * **vmin** — the population-mean quiet-workload crash offset (the
///   voltage headroom the Vmin margin forgoes);
/// * **core-to-core** — the 95th-percentile per-chip core Vmin spread
///   across a sampled population.
pub fn measure<R: Rng + ?Sized>(
    droop: &DroopModel,
    vmin: &VminModel,
    variation: &VariationParams,
    population: usize,
    cores_per_chip: usize,
    rng: &mut R,
) -> GuardbandBreakdown {
    assert!(population > 0, "population must be non-empty");

    let chips = variation.sample_population(population, cores_per_chip, 4, rng);

    // Mean quiet-workload crash offset across all cores in the population.
    let mut offsets = Vec::with_capacity(population * cores_per_chip);
    let mut spreads = Vec::with_capacity(population);
    for chip in &chips {
        let mut chip_offsets = Vec::with_capacity(cores_per_chip);
        for c in 0..cores_per_chip {
            let off = vmin.crash_offset(chip.core_vmin_offset(c), 0.0, rng);
            chip_offsets.push(off);
            offsets.push(off);
        }
        let max = chip_offsets.iter().cloned().fold(f64::MIN, f64::max);
        let min = chip_offsets.iter().cloned().fold(f64::MAX, f64::min);
        spreads.push(max - min);
    }
    let mean_vmin_margin = offsets.iter().sum::<f64>() / offsets.len() as f64;

    spreads.sort_by(|a, b| a.partial_cmp(b).expect("spreads are finite"));
    let p95 = spreads[(spreads.len() as f64 * 0.95) as usize % spreads.len()];

    GuardbandBreakdown {
        voltage_droops: Ratio::new(droop.virus_ceiling()),
        vmin: Ratio::new(mean_vmin_margin),
        core_to_core: Ratio::new(p95),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn industry_numbers_match_table1() {
        let g = GuardbandBreakdown::industry_practice();
        assert_eq!(g.voltage_droops.as_percent(), 20.0);
        assert_eq!(g.vmin.as_percent(), 15.0);
        assert_eq!(g.core_to_core.as_percent(), 5.0);
        assert_eq!(g.total().as_percent(), 40.0);
    }

    #[test]
    fn rows_cover_all_sources() {
        let rows = GuardbandBreakdown::industry_practice().rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, "Voltage droops");
    }

    #[test]
    fn measured_breakdown_is_in_table1_ballpark() {
        let mut rng = StdRng::seed_from_u64(5);
        // A Vmin model with ~15 % quiet margin, like Table 1's Vmin row.
        let vmin = VminModel { base_crash_offset: 0.15, ..VminModel::default() };
        let g = measure(
            &DroopModel::typical_server_pdn(),
            &vmin,
            &VariationParams::server_28nm(),
            400,
            8,
            &mut rng,
        );
        // Shapes from Table 1: droop is the biggest source, core-to-core
        // the smallest; magnitudes within a few percent of the quoted ones.
        assert!(g.voltage_droops.value() > g.vmin.value() * 0.8);
        assert!(g.core_to_core < g.vmin);
        assert!((g.voltage_droops.as_percent() - 20.0).abs() < 5.0, "droop {}", g.voltage_droops);
        assert!((g.vmin.as_percent() - 15.0).abs() < 3.0, "vmin {}", g.vmin);
        assert!((g.core_to_core.as_percent() - 5.0).abs() < 3.5, "c2c {}", g.core_to_core);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_population_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = measure(
            &DroopModel::typical_server_pdn(),
            &VminModel::default(),
            &VariationParams::server_28nm(),
            0,
            4,
            &mut rng,
        );
    }
}
