//! Baseline techniques the paper positions UniServer against (§5.A).
//!
//! * **Razor-style in-situ timing-error detection** (refs [10][11]):
//!   shadow latches detect late transitions and replay the failing
//!   instruction, letting the pipeline run below the conservative
//!   margin at the cost of per-stage hardware, a detection energy tax
//!   and replay stalls. UniServer's contrast: "minimum hardware
//!   intrusion and does not require application side modification".
//! * **ArchShield-style fault-map tolerance** (ref [27]): expose known
//!   faulty words in a fault map and replicate them, tolerating raw
//!   error rates up to ~1e-4 — two orders beyond SECDED — at a small
//!   capacity tax. The reproduction uses it to bound how far DRAM
//!   refresh could be pushed beyond the paper's 5 s point.

use serde::{Deserialize, Serialize};
use uniserver_units::{BitErrorRate, Ratio, Seconds};

use crate::retention::RetentionModel;
use uniserver_units::Celsius;

/// A Razor-equipped core running below the conservative margin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RazorCore {
    /// Energy overhead of shadow latches and detection logic, as a
    /// fraction of core energy (published designs: ~3 %).
    pub detection_overhead: f64,
    /// Pipeline depth refilled on replay.
    pub replay_penalty_cycles: f64,
    /// Error rate (errors per cycle) at the *point of first failure*;
    /// grows tenfold per percent of further undervolt.
    pub per_cycle_error_rate_at_pof: f64,
    /// Error-rate growth per additional percent below the PoF.
    pub decade_per_percent: f64,
    /// How far above the outright crash point the PoF sits: timing
    /// errors begin before total failure (the same physics as the cache
    /// CE window of Table 2), so a Razor design's usable margin is
    /// smaller than the crash margin UniServer characterizes.
    pub pof_above_crash_percent: f64,
}

impl RazorCore {
    /// Published-flavour RazorII-style parameters.
    #[must_use]
    pub fn razor_ii() -> Self {
        RazorCore {
            detection_overhead: 0.03,
            replay_penalty_cycles: 11.0,
            per_cycle_error_rate_at_pof: 1e-5,
            decade_per_percent: 1.0,
            pof_above_crash_percent: 2.5,
        }
    }

    /// Error rate per cycle at `percent_below_pof` percent below the
    /// point of first failure.
    ///
    /// # Panics
    ///
    /// Panics if `percent_below_pof` is negative.
    #[must_use]
    pub fn error_rate(&self, percent_below_pof: f64) -> f64 {
        assert!(percent_below_pof >= 0.0, "depth below PoF must be non-negative");
        (self.per_cycle_error_rate_at_pof
            * 10f64.powf(self.decade_per_percent * percent_below_pof))
        .min(1.0)
    }

    /// Throughput retained after replay stalls at the given depth.
    #[must_use]
    pub fn throughput_factor(&self, percent_below_pof: f64) -> f64 {
        let rate = self.error_rate(percent_below_pof);
        1.0 / (1.0 + rate * self.replay_penalty_cycles)
    }

    /// Net *energy per instruction* relative to running at the
    /// conservative margin, when undervolting `percent_below_pof` below
    /// the PoF which itself sits `pof_margin_percent` below the
    /// conservative point. Energy ∝ V²; replay re-executes work;
    /// detection taxes everything.
    #[must_use]
    pub fn energy_per_instruction(&self, pof_margin_percent: f64, percent_below_pof: f64) -> f64 {
        let v = 1.0 - (pof_margin_percent + percent_below_pof) / 100.0;
        let base = v * v * (1.0 + self.detection_overhead);
        base / self.throughput_factor(percent_below_pof)
    }

    /// The depth (percent below PoF) minimizing energy per instruction:
    /// the classic Razor sweet spot just past the PoF, where replay
    /// costs start to win.
    #[must_use]
    pub fn optimal_depth(&self, pof_margin_percent: f64) -> f64 {
        let mut best = (0.0, self.energy_per_instruction(pof_margin_percent, 0.0));
        let mut d = 0.0;
        while d <= 5.0 {
            let e = self.energy_per_instruction(pof_margin_percent, d);
            if e < best.1 {
                best = (d, e);
            }
            d += 0.05;
        }
        best.0
    }
}

/// Energy comparison of UniServer's approach vs a Razor core, both
/// starting from the same conservative baseline.
///
/// UniServer operates *at* the characterized margin (no detection tax,
/// no replays, full throughput); Razor dives a little past its PoF and
/// pays detection + replay. Returns (uniserver, razor) energies per
/// instruction relative to the conservative baseline.
#[must_use]
pub fn uniserver_vs_razor(margin_percent: f64, razor: &RazorCore) -> (f64, f64) {
    let v_uniserver = 1.0 - margin_percent / 100.0;
    let uniserver = v_uniserver * v_uniserver;
    // Razor's PoF sits above the crash point, so its dive starts from a
    // smaller exploitable margin.
    let pof_margin = (margin_percent - razor.pof_above_crash_percent).max(0.0);
    let depth = razor.optimal_depth(pof_margin);
    let razor_energy = razor.energy_per_instruction(pof_margin, depth);
    (uniserver, razor_energy)
}

/// ArchShield-style fault-map tolerance for DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchShield {
    /// Maximum raw bit-error rate the fault map + replication absorbs.
    pub tolerable_ber: BitErrorRate,
    /// Capacity sacrificed to replicas and the fault map.
    pub capacity_tax: Ratio,
}

impl ArchShield {
    /// The published operating envelope: ~1e-4 raw BER at ~4 % capacity.
    #[must_use]
    pub fn published() -> Self {
        ArchShield { tolerable_ber: BitErrorRate::new(1e-4), capacity_tax: Ratio::new(0.04) }
    }

    /// The longest refresh interval whose raw BER stays within this
    /// scheme's tolerance — how much further than SECDED (1e-6) or the
    /// paper's bare 5 s point the refresh could be pushed.
    #[must_use]
    pub fn max_refresh(&self, retention: &RetentionModel, temp: Celsius) -> Seconds {
        let (mut lo, mut hi) = (0.064, 3_600.0);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if retention.fail_probability(Seconds::new(mid), temp) <= self.tolerable_ber.value() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Seconds::new(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn razor_error_rate_grows_a_decade_per_percent() {
        let r = RazorCore::razor_ii();
        let e0 = r.error_rate(0.0);
        let e1 = r.error_rate(1.0);
        let e2 = r.error_rate(2.0);
        assert!((e1 / e0 - 10.0).abs() < 1e-9);
        assert!((e2 / e1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn razor_throughput_collapses_deep_below_pof() {
        let r = RazorCore::razor_ii();
        assert!(r.throughput_factor(0.0) > 0.999);
        assert!(r.throughput_factor(8.0) < 0.6, "replays dominate deep below PoF");
    }

    #[test]
    fn razor_sweet_spot_is_shallow() {
        let r = RazorCore::razor_ii();
        let depth = r.optimal_depth(15.0);
        assert!(
            (0.0..4.0).contains(&depth),
            "Razor's optimum sits just past the PoF, got {depth} %"
        );
        // At the optimum, energy beats staying exactly at the PoF.
        assert!(
            r.energy_per_instruction(15.0, depth) <= r.energy_per_instruction(15.0, 0.0) + 1e-12
        );
    }

    #[test]
    fn uniserver_wins_at_equal_margin_knowledge() {
        // With the same 15 % exploitable margin, UniServer pays no
        // detection/replay tax; Razor can dive slightly deeper but its
        // overheads eat the difference at these depths.
        let (uniserver, razor) = uniserver_vs_razor(15.0, &RazorCore::razor_ii());
        assert!(uniserver < razor, "uniserver {uniserver} vs razor {razor}");
        // Both beat the conservative baseline (1.0).
        assert!(razor < 1.0);
    }

    #[test]
    fn razor_still_beats_doing_nothing() {
        let (_, razor) = uniserver_vs_razor(15.0, &RazorCore::razor_ii());
        assert!(razor < 0.85, "Razor recovers most of the margin: {razor}");
    }

    #[test]
    fn archshield_extends_the_refresh_envelope() {
        let shield = ArchShield::published();
        let retention = RetentionModel::ddr3_server();
        let temp = Celsius::new(45.0);
        let shielded = shield.max_refresh(&retention, temp);
        // SECDED's envelope (1e-6) for the same module:
        let secded = ArchShield {
            tolerable_ber: BitErrorRate::SECDED_LIMIT,
            capacity_tax: Ratio::ZERO,
        }
        .max_refresh(&retention, temp);
        assert!(shielded > secded, "{shielded} must exceed {secded}");
        // And both extend well past the paper's bare 5 s measurement.
        assert!(secded.as_secs() > 5.0);
        // The tolerance ordering matches the BER ordering by two decades.
        assert!(shielded.as_secs() / secded.as_secs() > 1.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_depth_panics() {
        let _ = RazorCore::razor_ii().error_rate(-1.0);
    }
}
