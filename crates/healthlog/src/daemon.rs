//! The HealthLog daemon proper: ring buffer, services and thresholds.

use std::collections::VecDeque;
use std::sync::Arc;

use std::sync::Mutex;
use serde::{Deserialize, Serialize};
use uniserver_units::Seconds;

use uniserver_platform::node::IntervalReport;

use crate::ledger::{ErrorLedger, LedgerKey};
use crate::vector::InfoVector;

/// Actions the HealthLog recommends to higher layers when thresholds
/// trip (§3: "if the number of errors rises above a certain threshold a
/// new stress-test cycle may be triggered").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HealthAction {
    /// Trigger an on-demand StressLog re-characterization.
    TriggerStressTest,
    /// Isolate a resource that concentrates errors.
    IsolateResource(LedgerKey),
}

/// Error-rate thresholds driving recommendations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdPolicy {
    /// Corrected errors per minute (node-wide) above which a stress test
    /// is recommended.
    pub ce_per_minute: f64,
    /// Per-origin total errors above which isolation is recommended.
    pub isolate_origin_errors: u64,
    /// Window over which rates are evaluated.
    pub rate_window: Seconds,
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        ThresholdPolicy {
            ce_per_minute: 30.0,
            isolate_origin_errors: 20,
            rate_window: Seconds::new(60.0),
        }
    }
}

/// The HealthLog daemon.
#[derive(Debug, Clone)]
pub struct HealthLog {
    vectors: VecDeque<InfoVector>,
    /// Corrected-error count per retained vector (same order as
    /// `vectors`): the CE-rate service polls this every ingest, and
    /// re-counting a CE-storm vector's thousands of error records each
    /// time is the difference between O(window) and O(window × errors).
    corrected_counts: VecDeque<usize>,
    capacity: usize,
    ledger: ErrorLedger,
    policy: ThresholdPolicy,
    logfile: Vec<String>,
}

/// A shareable handle: daemons and the hypervisor hold the same log.
pub type SharedHealthLog = Arc<Mutex<HealthLog>>;

impl HealthLog {
    /// Creates a daemon retaining up to `capacity` vectors.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, policy: ThresholdPolicy) -> Self {
        assert!(capacity > 0, "HealthLog needs capacity");
        HealthLog {
            vectors: VecDeque::with_capacity(capacity),
            corrected_counts: VecDeque::with_capacity(capacity),
            capacity,
            ledger: ErrorLedger::new(),
            policy,
            logfile: Vec::new(),
        }
    }

    /// Wraps a daemon in a shareable handle.
    #[must_use]
    pub fn shared(capacity: usize, policy: ThresholdPolicy) -> SharedHealthLog {
        Arc::new(Mutex::new(HealthLog::new(capacity, policy)))
    }

    /// Event-driven service: ingests one platform interval. Every vector
    /// lands in the ring buffer; event vectors additionally produce a
    /// logfile line and update the ledger. Returns recommended actions
    /// (possibly empty).
    pub fn ingest(&mut self, report: &IntervalReport) -> Vec<HealthAction> {
        self.ingest_owned(report.clone())
    }

    /// [`HealthLog::ingest`] taking the report by value: the vector is
    /// built by *moving* the report's sensor sweep, counters and error
    /// records instead of cloning them — the serving loop's hypervisor
    /// is done with the report once the HealthLog has it, so the per-
    /// tick clone of (potentially thousands of) error records was pure
    /// overhead.
    pub fn ingest_owned(&mut self, report: IntervalReport) -> Vec<HealthAction> {
        let vector = InfoVector::from_owned_report(report);
        for err in &vector.errors {
            self.ledger.record(err);
        }
        if vector.is_event() {
            self.logfile.push(vector.render_logline());
        }
        if self.vectors.len() == self.capacity {
            self.vectors.pop_front();
            self.corrected_counts.pop_front();
        }
        self.corrected_counts.push_back(vector.corrected_count());
        self.vectors.push_back(vector);
        self.recommendations()
    }

    /// On-demand service: the retained vectors, oldest first.
    #[must_use]
    pub fn vectors(&self) -> &VecDeque<InfoVector> {
        &self.vectors
    }

    /// On-demand service: the most recent vector.
    #[must_use]
    pub fn latest(&self) -> Option<&InfoVector> {
        self.vectors.back()
    }

    /// On-demand service: vectors within `[from, to)`.
    #[must_use]
    pub fn query_range(&self, from: Seconds, to: Seconds) -> Vec<&InfoVector> {
        self.vectors.iter().filter(|v| v.at >= from && v.at < to).collect()
    }

    /// On-demand service: the per-origin ledger.
    #[must_use]
    pub fn ledger(&self) -> &ErrorLedger {
        &self.ledger
    }

    /// The accumulated system logfile (one line per event vector).
    #[must_use]
    pub fn logfile(&self) -> &[String] {
        &self.logfile
    }

    /// Appends a free-form note to the logfile — used by sibling daemons
    /// (e.g. StressLog announcing a re-characterization) so one logfile
    /// tells the whole story.
    pub fn log_note(&mut self, note: impl Into<String>) {
        self.logfile.push(note.into());
    }

    /// Corrected errors per minute over the policy's rate window ending
    /// at the latest vector.
    #[must_use]
    pub fn ce_rate_per_minute(&self) -> f64 {
        let Some(latest) = self.vectors.back() else { return 0.0 };
        let from = latest.at.saturating_sub(self.policy.rate_window);
        let mut ces = 0usize;
        let mut span = 0.0;
        for (v, &vector_ces) in self.vectors.iter().zip(&self.corrected_counts) {
            if v.at > from {
                ces += vector_ces;
                span += v.duration.as_secs();
            }
        }
        if span == 0.0 {
            0.0
        } else {
            ces as f64 * 60.0 / span
        }
    }

    /// Evaluates thresholds against the current state.
    #[must_use]
    pub fn recommendations(&self) -> Vec<HealthAction> {
        let mut actions = Vec::new();
        if self.ce_rate_per_minute() > self.policy.ce_per_minute {
            actions.push(HealthAction::TriggerStressTest);
        }
        for (key, _) in self.ledger.hot_origins(self.policy.isolate_origin_errors) {
            actions.push(HealthAction::IsolateResource(key));
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniserver_platform::node::ServerNode;
    use uniserver_platform::part::PartSpec;
    use uniserver_platform::workload::WorkloadProfile;
    use uniserver_platform::msr::DomainId;

    fn run_clean(health: &mut HealthLog, intervals: usize) {
        let mut node = ServerNode::new(PartSpec::arm_microserver(), 3);
        let w = WorkloadProfile::spec_bzip2();
        for _ in 0..intervals {
            let report = node.run_interval(&w, Seconds::from_millis(500.0));
            health.ingest(&report);
        }
    }

    #[test]
    fn clean_operation_recommends_nothing() {
        let mut health = HealthLog::new(64, ThresholdPolicy::default());
        run_clean(&mut health, 20);
        assert!(health.recommendations().is_empty());
        assert_eq!(health.vectors().len(), 20);
        assert!(health.logfile().is_empty(), "clean intervals produce no log lines");
        assert_eq!(health.ce_rate_per_minute(), 0.0);
    }

    #[test]
    fn ring_buffer_caps_history() {
        let mut health = HealthLog::new(8, ThresholdPolicy::default());
        run_clean(&mut health, 20);
        assert_eq!(health.vectors().len(), 8);
        // The newest vector is retained.
        assert!((health.latest().unwrap().at.as_secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn error_storm_triggers_stress_test_and_isolation() {
        // Drive a node with a deeply relaxed refresh (ECC off) to rain
        // uncorrected DRAM errors.
        let mut node = ServerNode::with_memory(
            PartSpec::arm_microserver(),
            uniserver_platform::dram::MemorySystem::commodity_server(true),
            3,
        );
        node.msr.set_refresh_interval(DomainId(1), Seconds::new(10.0)).unwrap();
        let mut health = HealthLog::new(256, ThresholdPolicy {
            ce_per_minute: 5.0,
            isolate_origin_errors: 5,
            rate_window: Seconds::new(120.0),
        });
        let w = WorkloadProfile::spec_mcf();
        let mut actions = Vec::new();
        for _ in 0..40 {
            let report = node.run_interval(&w, Seconds::new(2.0));
            actions = health.ingest(&report);
            if !actions.is_empty() {
                break;
            }
        }
        assert!(
            actions.contains(&HealthAction::TriggerStressTest)
                || actions.iter().any(|a| matches!(a, HealthAction::IsolateResource(_))),
            "an error storm must trigger a recommendation; ledger total {}",
            health.ledger().grand_total()
        );
        assert!(!health.logfile().is_empty(), "events must hit the logfile");
    }

    #[test]
    fn query_range_selects_by_time() {
        let mut health = HealthLog::new(64, ThresholdPolicy::default());
        run_clean(&mut health, 10);
        let picked = health.query_range(Seconds::new(1.0), Seconds::new(3.0));
        assert_eq!(picked.len(), 4, "vectors at 1.0, 1.5, 2.0, 2.5");
    }

    #[test]
    fn shared_handle_is_usable_across_owners() {
        let shared = HealthLog::shared(16, ThresholdPolicy::default());
        let clone = Arc::clone(&shared);
        let mut node = ServerNode::new(PartSpec::arm_microserver(), 9);
        let report = node.run_interval(&WorkloadProfile::idle(), Seconds::new(1.0));
        clone.lock().unwrap().ingest(&report);
        assert_eq!(shared.lock().unwrap().vectors().len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = HealthLog::new(0, ThresholdPolicy::default());
    }
}
