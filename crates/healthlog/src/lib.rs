//! The HealthLog daemon (paper §3.C).
//!
//! "A runtime mechanism that will monitor the system and report errors
//! occurring during uptime … the HealthLog monitor records runtime system
//! metrics in the form of an information vector, stored in a system
//! logfile." The daemon offers the paper's two services:
//!
//! * **Event-driven**: every platform interval is ingested; intervals
//!   containing errors (or a crash) are flagged and thresholds are
//!   evaluated, possibly recommending actions to higher layers (trigger
//!   a StressLog cycle, isolate a resource).
//! * **On-demand**: higher layers (Predictor, Hypervisor) query the
//!   recent vectors, per-origin error ledgers and error rates.
//!
//! # Examples
//!
//! ```
//! use uniserver_healthlog::{HealthLog, ThresholdPolicy};
//! use uniserver_platform::{PartSpec, ServerNode, WorkloadProfile};
//! use uniserver_units::Seconds;
//!
//! let mut node = ServerNode::new(PartSpec::arm_microserver(), 1);
//! let mut health = HealthLog::new(1024, ThresholdPolicy::default());
//! let report = node.run_interval(&WorkloadProfile::spec_bzip2(), Seconds::new(1.0));
//! health.ingest(&report);
//! assert_eq!(health.vectors().len(), 1);
//! ```

mod daemon;
mod ledger;
mod vector;

pub use daemon::{HealthAction, HealthLog, SharedHealthLog, ThresholdPolicy};
pub use ledger::{ErrorLedger, LedgerKey, OriginStats};
pub use vector::{ConfigValues, InfoVector};
