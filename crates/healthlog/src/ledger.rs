//! Per-origin error accounting.
//!
//! The hypervisor isolates "problematic processing and memory resources
//! experiencing high error rates, as reported by the HealthLog" (§4.A).
//! The ledger is the data structure behind that report: lifetime
//! corrected/uncorrected counts per physical origin.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use uniserver_platform::mca::{ErrorOrigin, MceRecord};
use uniserver_silicon::ErrorSeverity;

/// Aggregated error counts for one origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OriginStats {
    /// Corrected errors attributed to the origin.
    pub corrected: u64,
    /// Uncorrected errors attributed to the origin.
    pub uncorrected: u64,
    /// Fatal events attributed to the origin.
    pub fatal: u64,
}

impl OriginStats {
    /// Total error count regardless of severity.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.corrected + self.uncorrected + self.fatal
    }
}

/// Ledger origins are coarsened so DIMM word addresses collapse onto the
/// DIMM (isolation happens at resource granularity, not per word).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LedgerKey {
    /// A CPU core.
    Core(usize),
    /// A cache bank.
    CacheBank(usize),
    /// A DIMM.
    Dimm(usize),
}

impl LedgerKey {
    /// Coarsens a machine-check origin onto a ledger key.
    #[must_use]
    pub fn from_origin(origin: ErrorOrigin) -> Self {
        match origin {
            ErrorOrigin::Core(c) => LedgerKey::Core(c),
            ErrorOrigin::CacheBank(b) => LedgerKey::CacheBank(b),
            ErrorOrigin::Dimm { dimm, .. } => LedgerKey::Dimm(dimm),
        }
    }
}

impl std::fmt::Display for LedgerKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerKey::Core(c) => write!(f, "core{c}"),
            LedgerKey::CacheBank(b) => write!(f, "l3bank{b}"),
            LedgerKey::Dimm(d) => write!(f, "dimm{d}"),
        }
    }
}

/// The per-origin error ledger.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ErrorLedger {
    stats: HashMap<LedgerKey, OriginStats>,
}

impl ErrorLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        ErrorLedger::default()
    }

    /// Records one machine-check record.
    pub fn record(&mut self, rec: &MceRecord) {
        let entry = self.stats.entry(LedgerKey::from_origin(rec.origin)).or_default();
        match rec.severity {
            ErrorSeverity::Corrected => entry.corrected += 1,
            ErrorSeverity::Uncorrected => entry.uncorrected += 1,
            ErrorSeverity::Fatal => entry.fatal += 1,
        }
    }

    /// Stats for one origin (zeros if never seen).
    #[must_use]
    pub fn stats(&self, key: LedgerKey) -> OriginStats {
        self.stats.get(&key).copied().unwrap_or_default()
    }

    /// Origins whose total error count reaches `threshold`, sorted by
    /// descending total — the isolation candidates.
    #[must_use]
    pub fn hot_origins(&self, threshold: u64) -> Vec<(LedgerKey, OriginStats)> {
        let mut v: Vec<(LedgerKey, OriginStats)> = self
            .stats
            .iter()
            .filter(|(_, s)| s.total() >= threshold)
            .map(|(k, s)| (*k, *s))
            .collect();
        v.sort_by(|a, b| b.1.total().cmp(&a.1.total()).then(a.0.cmp(&b.0)));
        v
    }

    /// Total errors recorded across all origins.
    #[must_use]
    pub fn grand_total(&self) -> u64 {
        self.stats.values().map(OriginStats::total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniserver_platform::mca::ErrorOrigin;
    use uniserver_silicon::FaultKind;
    use uniserver_units::Seconds;

    fn rec(origin: ErrorOrigin, severity: ErrorSeverity) -> MceRecord {
        MceRecord { at: Seconds::ZERO, kind: FaultKind::DramBit, severity, origin }
    }

    #[test]
    fn words_collapse_onto_dimms() {
        let mut ledger = ErrorLedger::new();
        ledger.record(&rec(ErrorOrigin::Dimm { dimm: 1, word: 10 }, ErrorSeverity::Corrected));
        ledger.record(&rec(ErrorOrigin::Dimm { dimm: 1, word: 99 }, ErrorSeverity::Corrected));
        assert_eq!(ledger.stats(LedgerKey::Dimm(1)).corrected, 2);
    }

    #[test]
    fn hot_origins_sorted_and_filtered() {
        let mut ledger = ErrorLedger::new();
        for _ in 0..5 {
            ledger.record(&rec(ErrorOrigin::CacheBank(0), ErrorSeverity::Corrected));
        }
        for _ in 0..2 {
            ledger.record(&rec(ErrorOrigin::Core(1), ErrorSeverity::Uncorrected));
        }
        ledger.record(&rec(ErrorOrigin::CacheBank(3), ErrorSeverity::Corrected));

        let hot = ledger.hot_origins(2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, LedgerKey::CacheBank(0));
        assert_eq!(hot[1].0, LedgerKey::Core(1));
        assert_eq!(ledger.grand_total(), 8);
    }

    #[test]
    fn unseen_origin_reads_zero() {
        let ledger = ErrorLedger::new();
        assert_eq!(ledger.stats(LedgerKey::Core(5)).total(), 0);
    }

    #[test]
    fn severities_are_separated() {
        let mut ledger = ErrorLedger::new();
        ledger.record(&rec(ErrorOrigin::Core(0), ErrorSeverity::Corrected));
        ledger.record(&rec(ErrorOrigin::Core(0), ErrorSeverity::Uncorrected));
        ledger.record(&rec(ErrorOrigin::Core(0), ErrorSeverity::Fatal));
        let s = ledger.stats(LedgerKey::Core(0));
        assert_eq!((s.corrected, s.uncorrected, s.fatal), (1, 1, 1));
    }
}
