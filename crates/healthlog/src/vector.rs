//! Information vectors: the HealthLog's unit of reporting.

use serde::{Deserialize, Serialize};
use uniserver_units::{Seconds, Volts, Watts};

use uniserver_platform::mca::MceRecord;
use uniserver_platform::node::IntervalReport;
use uniserver_platform::pmu::PmuCounters;
use uniserver_platform::sensors::SensorSnapshot;
use uniserver_silicon::ErrorSeverity;

/// System configuration values captured alongside each vector (the
/// paper extends existing error reporting "with system configuration
/// values, sensor readings and performance counters").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigValues {
    /// Effective per-core supply voltages at capture time.
    pub core_voltages: Vec<Volts>,
    /// Mean node power over the captured interval.
    pub node_power: Watts,
}

/// One information vector: everything the HealthLog knows about one
/// interval of operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfoVector {
    /// End-of-interval timestamp.
    pub at: Seconds,
    /// Interval length.
    pub duration: Seconds,
    /// Configuration values.
    pub config: ConfigValues,
    /// Sensor sweep.
    pub sensors: SensorSnapshot,
    /// Per-core performance-counter increments.
    pub counters: Vec<PmuCounters>,
    /// Error records raised during the interval.
    pub errors: Vec<MceRecord>,
    /// Whether the node crashed during the interval.
    pub crashed: bool,
}

impl InfoVector {
    /// Builds a vector from a platform interval report.
    #[must_use]
    pub fn from_report(report: &IntervalReport) -> Self {
        Self::from_owned_report(report.clone())
    }

    /// Builds a vector by consuming the report: sensors, counters and
    /// error records move in (no clones — at CE-storm rates the error
    /// vector alone is thousands of records per interval). Only the
    /// per-core voltages are copied, because both the configuration
    /// values and the sensor sweep carry them.
    #[must_use]
    pub fn from_owned_report(report: IntervalReport) -> Self {
        InfoVector {
            at: report.at,
            duration: report.duration,
            config: ConfigValues {
                core_voltages: report.sensors.core_voltages.clone(),
                node_power: report.power,
            },
            sensors: report.sensors,
            counters: report.pmu_deltas,
            errors: report.errors,
            crashed: report.crash.is_some(),
        }
    }

    /// Number of corrected errors in the vector.
    #[must_use]
    pub fn corrected_count(&self) -> usize {
        self.errors.iter().filter(|e| e.severity == ErrorSeverity::Corrected).count()
    }

    /// Number of uncorrected errors in the vector.
    #[must_use]
    pub fn uncorrected_count(&self) -> usize {
        self.errors.iter().filter(|e| e.severity == ErrorSeverity::Uncorrected).count()
    }

    /// Whether the vector carries any error or crash (event-worthy).
    #[must_use]
    pub fn is_event(&self) -> bool {
        self.crashed || !self.errors.is_empty()
    }

    /// Renders the vector as one logfile line (the "system logfile" of
    /// §3.C): stable, grep-friendly key=value text. Writes into one
    /// buffer (no per-field temporaries — a CE-storm line carries one
    /// `err[...]` tag per record, and this renders on the serving hot
    /// path every event tick).
    #[must_use]
    pub fn render_logline(&self) -> String {
        use std::fmt::Write as _;

        let mut line = String::with_capacity(96 + 16 * self.errors.len());
        write!(
            line,
            "t={:.3} dur={:.3} power_w={:.2} ce={} ue={} crashed={}",
            self.at.as_secs(),
            self.duration.as_secs(),
            self.config.node_power.as_watts(),
            self.corrected_count(),
            self.uncorrected_count(),
            self.crashed,
        )
        .expect("writing to a String cannot fail");
        for (i, v) in self.config.core_voltages.iter().enumerate() {
            write!(line, " v{}={:.0}mV", i, v.as_millivolts()).expect("infallible");
        }
        write!(line, " tmax={:.1}C", self.sensors.max_core_temp().as_celsius())
            .expect("infallible");
        for e in &self.errors {
            write!(line, " err[{}@{}]", e.severity.label(), e.origin).expect("infallible");
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniserver_platform::node::ServerNode;
    use uniserver_platform::part::PartSpec;
    use uniserver_platform::workload::WorkloadProfile;

    fn vector_from_run() -> InfoVector {
        let mut node = ServerNode::new(PartSpec::arm_microserver(), 5);
        let report = node.run_interval(&WorkloadProfile::spec_mcf(), Seconds::new(1.0));
        InfoVector::from_report(&report)
    }

    #[test]
    fn vector_mirrors_report_shape() {
        let v = vector_from_run();
        assert_eq!(v.counters.len(), 8);
        assert_eq!(v.config.core_voltages.len(), 8);
        assert!(!v.crashed);
        assert!((v.at.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clean_interval_is_not_an_event() {
        let v = vector_from_run();
        assert!(!v.is_event());
        assert_eq!(v.corrected_count(), 0);
        assert_eq!(v.uncorrected_count(), 0);
    }

    #[test]
    fn logline_is_stable_and_greppable() {
        let v = vector_from_run();
        let line = v.render_logline();
        assert!(line.starts_with("t=1.000 dur=1.000"));
        assert!(line.contains("ce=0 ue=0 crashed=false"));
        assert!(line.contains("v0="));
        assert!(line.contains("tmax="));
    }

    #[test]
    fn error_records_appear_in_logline() {
        use uniserver_platform::mca::{ErrorOrigin, MceRecord};
        use uniserver_silicon::FaultKind;
        let mut v = vector_from_run();
        v.errors.push(MceRecord {
            at: v.at,
            kind: FaultKind::CacheBit,
            severity: ErrorSeverity::Corrected,
            origin: ErrorOrigin::CacheBank(2),
        });
        assert!(v.is_event());
        assert!(v.render_logline().contains("err[CE@l3bank2]"));
    }
}
