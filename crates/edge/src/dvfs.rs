//! DVFS scaling arithmetic.

use serde::{Deserialize, Serialize};
use uniserver_units::Seconds;

/// A voltage/frequency operating point relative to peak.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsPoint {
    /// Frequency as a fraction of peak.
    pub freq_scale: f64,
    /// Voltage as a fraction of nominal.
    pub voltage_scale: f64,
}

impl DvfsPoint {
    /// Peak operation.
    pub const PEAK: DvfsPoint = DvfsPoint { freq_scale: 1.0, voltage_scale: 1.0 };

    /// Creates a point.
    ///
    /// # Panics
    ///
    /// Panics if either scale is outside `(0, 1.5]`.
    #[must_use]
    pub fn new(freq_scale: f64, voltage_scale: f64) -> Self {
        for (name, v) in [("frequency", freq_scale), ("voltage", voltage_scale)] {
            assert!(v > 0.0 && v <= 1.5, "{name} scale must be in (0, 1.5], got {v}");
        }
        DvfsPoint { freq_scale, voltage_scale }
    }

    /// The paper's worked example: 50 % of peak frequency, 30 % less
    /// voltage.
    #[must_use]
    pub fn paper_edge_point() -> Self {
        DvfsPoint::new(0.5, 0.7)
    }

    /// Dynamic power relative to peak: `V² · f`.
    #[must_use]
    pub fn power_scale(self) -> f64 {
        self.voltage_scale * self.voltage_scale * self.freq_scale
    }

    /// Energy for a *fixed amount of work* relative to peak: cycles are
    /// constant, runtime stretches by `1/f`, so `E = P·t ∝ V²`.
    #[must_use]
    pub fn energy_scale_fixed_work(self) -> f64 {
        self.voltage_scale * self.voltage_scale
    }

    /// Runtime stretch for fixed work: `1/f`.
    #[must_use]
    pub fn runtime_scale(self) -> f64 {
        1.0 / self.freq_scale
    }

    /// Compute time for work that takes `peak_time` at peak settings.
    #[must_use]
    pub fn runtime(self, peak_time: Seconds) -> Seconds {
        peak_time * self.runtime_scale()
    }

    /// The deepest frequency scale that still finishes `peak_time` of
    /// work within `budget`, or `None` if even peak misses the budget.
    /// Voltage is scaled with frequency along a typical V-f curve
    /// (`V ∝ 0.55 + 0.45·f`, i.e. 30 % less voltage at half frequency —
    /// the paper's pairing).
    #[must_use]
    pub fn deepest_within(peak_time: Seconds, budget: Seconds) -> Option<DvfsPoint> {
        if peak_time > budget {
            return None;
        }
        // t/f <= budget  =>  f >= t/budget.
        let f = (peak_time.as_secs() / budget.as_secs()).clamp(0.05, 1.0);
        let v = (0.55 + 0.45 * f).min(1.0);
        Some(DvfsPoint::new(f, v))
    }
}

impl Default for DvfsPoint {
    fn default() -> Self {
        DvfsPoint::PEAK
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_hold_exactly() {
        let p = DvfsPoint::paper_edge_point();
        // "50 % less energy and 75 % less power".
        assert!((1.0 - p.energy_scale_fixed_work() - 0.51).abs() < 0.02);
        assert!((1.0 - p.power_scale() - 0.755).abs() < 0.01);
        assert_eq!(p.runtime_scale(), 2.0);
    }

    #[test]
    fn peak_is_identity() {
        let p = DvfsPoint::PEAK;
        assert_eq!(p.power_scale(), 1.0);
        assert_eq!(p.energy_scale_fixed_work(), 1.0);
        assert_eq!(p.runtime(Seconds::new(3.0)), Seconds::new(3.0));
    }

    #[test]
    fn deepest_point_fills_the_budget() {
        let peak_time = Seconds::from_millis(50.0);
        let budget = Seconds::from_millis(100.0);
        let p = DvfsPoint::deepest_within(peak_time, budget).expect("fits at peak");
        assert!((p.freq_scale - 0.5).abs() < 1e-12);
        assert!((p.voltage_scale - 0.775).abs() < 1e-12);
        // The chosen point indeed finishes on time.
        assert!(p.runtime(peak_time) <= budget + Seconds::from_micros(1.0));
    }

    #[test]
    fn impossible_budget_returns_none() {
        assert_eq!(
            DvfsPoint::deepest_within(Seconds::from_millis(120.0), Seconds::from_millis(100.0)),
            None
        );
    }

    #[test]
    fn half_frequency_pairs_with_thirty_percent_less_voltage() {
        let p = DvfsPoint::deepest_within(Seconds::from_millis(50.0), Seconds::from_millis(100.0))
            .unwrap();
        // The V-f curve was chosen so the paper's pairing is on it:
        // f=0.5 -> V=0.775 (curve) vs the paper's 0.7 — same ballpark;
        // at the exact paper point the savings match the quoted numbers.
        assert!((p.voltage_scale - 0.775).abs() < 1e-9);
        let paper = DvfsPoint::paper_edge_point();
        assert!(paper.voltage_scale < p.voltage_scale, "the paper is slightly more aggressive");
    }

    #[test]
    #[should_panic(expected = "voltage scale")]
    fn invalid_scale_panics() {
        let _ = DvfsPoint::new(0.5, 0.0);
    }
}
