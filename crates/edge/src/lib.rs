//! Edge-vs-Cloud latency budgets and DVFS energy arithmetic (§6.D).
//!
//! The paper's argument: "a hypothetical IoT service with a target
//! end-to-end latency of 200 ms can easily, for a roundtrip to the
//! cloud, expect to spend half of its budget in the network. … Edge
//! processing has the potential to eliminate most, if not all, of the
//! communication latency and, therefore, can permit to run the service
//! at lower frequency and voltage. For example, operating at 50 % of
//! the peak frequency with 30 % less voltage translates to running with
//! 50 % less energy and 75 % less power."
//!
//! # Examples
//!
//! ```
//! use uniserver_edge::dvfs::DvfsPoint;
//!
//! let p = DvfsPoint::paper_edge_point(); // f x0.5, V x0.7
//! assert!((p.power_scale() - 0.245).abs() < 1e-12);        // ~75 % less power
//! assert!((p.energy_scale_fixed_work() - 0.49).abs() < 1e-12); // ~50 % less energy
//! ```

pub mod dvfs;
pub mod latency;

pub use dvfs::DvfsPoint;
pub use latency::{LatencyBudget, NetworkPath, PlacementAnalysis};
