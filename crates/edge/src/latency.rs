//! End-to-end latency budgets for Cloud vs Edge placement.

use serde::{Deserialize, Serialize};
use uniserver_units::Seconds;

use crate::dvfs::DvfsPoint;

/// The network path between the data source and the compute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkPath {
    /// Round-trip time of the path.
    pub rtt: Seconds,
    /// Human-readable description.
    pub label: &'static str,
}

impl NetworkPath {
    /// Public-internet roundtrip to a centralized cloud region —
    /// "tens to hundreds of milliseconds" (§6.D); 100 ms is the paper's
    /// half-of-200 ms working number.
    #[must_use]
    pub fn cloud_wan() -> Self {
        NetworkPath { rtt: Seconds::from_millis(100.0), label: "WAN to cloud region" }
    }

    /// LAN hop to an on-premises Edge micro-server.
    #[must_use]
    pub fn edge_lan() -> Self {
        NetworkPath { rtt: Seconds::from_millis(3.0), label: "LAN to edge node" }
    }
}

/// An end-to-end latency target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBudget {
    /// The service's end-to-end target.
    pub end_to_end: Seconds,
}

impl LatencyBudget {
    /// The paper's hypothetical IoT service: 200 ms end-to-end.
    #[must_use]
    pub fn paper_iot_service() -> Self {
        LatencyBudget { end_to_end: Seconds::from_millis(200.0) }
    }

    /// Compute budget left after the network roundtrip.
    #[must_use]
    pub fn compute_budget(&self, path: NetworkPath) -> Seconds {
        self.end_to_end.saturating_sub(path.rtt)
    }

    /// Fraction of the budget consumed by the network.
    #[must_use]
    pub fn network_share(&self, path: NetworkPath) -> f64 {
        (path.rtt.as_secs() / self.end_to_end.as_secs()).min(1.0)
    }
}

/// The full placement comparison for one service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementAnalysis {
    /// Peak-frequency compute time the service needs.
    pub peak_compute: Seconds,
    /// Budget.
    pub budget: LatencyBudget,
    /// Operating point feasible in the cloud (None = misses deadline).
    pub cloud_point: Option<DvfsPoint>,
    /// Operating point feasible at the edge.
    pub edge_point: Option<DvfsPoint>,
}

impl PlacementAnalysis {
    /// Analyzes a service with the given peak compute time under the
    /// paper's two paths.
    #[must_use]
    pub fn analyze(peak_compute: Seconds, budget: LatencyBudget) -> Self {
        let cloud_point =
            DvfsPoint::deepest_within(peak_compute, budget.compute_budget(NetworkPath::cloud_wan()));
        let edge_point =
            DvfsPoint::deepest_within(peak_compute, budget.compute_budget(NetworkPath::edge_lan()));
        PlacementAnalysis { peak_compute, budget, cloud_point, edge_point }
    }

    /// Energy saving of edge vs cloud execution for this service
    /// (fraction of the cloud-placement energy), when both are feasible.
    #[must_use]
    pub fn edge_energy_saving(&self) -> Option<f64> {
        let cloud = self.cloud_point?.energy_scale_fixed_work();
        let edge = self.edge_point?.energy_scale_fixed_work();
        Some(1.0 - edge / cloud)
    }

    /// Power saving of edge vs cloud execution.
    #[must_use]
    pub fn edge_power_saving(&self) -> Option<f64> {
        let cloud = self.cloud_point?.power_scale();
        let edge = self.edge_point?.power_scale();
        Some(1.0 - edge / cloud)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_wan_eats_half_the_paper_budget() {
        let budget = LatencyBudget::paper_iot_service();
        let share = budget.network_share(NetworkPath::cloud_wan());
        assert!((share - 0.5).abs() < 1e-12, "network share {share}");
        assert!((budget.compute_budget(NetworkPath::cloud_wan()).as_millis() - 100.0).abs() < 1e-9);
        assert!(budget.network_share(NetworkPath::edge_lan()) < 0.02);
    }

    #[test]
    fn edge_placement_enables_deep_dvfs() {
        // A service needing ~95 ms of peak compute: at the cloud it must
        // run at (nearly) full tilt; at the edge it can halve frequency.
        let analysis = PlacementAnalysis::analyze(
            Seconds::from_millis(95.0),
            LatencyBudget::paper_iot_service(),
        );
        let cloud = analysis.cloud_point.expect("cloud feasible, barely");
        let edge = analysis.edge_point.expect("edge feasible");
        assert!(cloud.freq_scale > 0.9, "cloud must run near peak: {}", cloud.freq_scale);
        assert!(edge.freq_scale < 0.55, "edge can halve frequency: {}", edge.freq_scale);

        // The paper's headline savings: ~50 % energy, ~75 % power.
        let e = analysis.edge_energy_saving().unwrap();
        let p = analysis.edge_power_saving().unwrap();
        assert!((0.30..0.60).contains(&e), "energy saving {e}");
        assert!((0.60..0.85).contains(&p), "power saving {p}");
    }

    #[test]
    fn heavy_services_only_fit_at_the_edge() {
        let analysis = PlacementAnalysis::analyze(
            Seconds::from_millis(150.0),
            LatencyBudget::paper_iot_service(),
        );
        assert!(analysis.cloud_point.is_none(), "cloud misses the deadline");
        assert!(analysis.edge_point.is_some());
        assert_eq!(analysis.edge_energy_saving(), None, "no cloud baseline to compare");
    }

    #[test]
    fn trivial_services_run_deep_everywhere() {
        let analysis = PlacementAnalysis::analyze(
            Seconds::from_millis(4.0),
            LatencyBudget::paper_iot_service(),
        );
        let cloud = analysis.cloud_point.unwrap();
        let edge = analysis.edge_point.unwrap();
        assert!(cloud.freq_scale < 0.1 && edge.freq_scale < 0.1);
    }
}
