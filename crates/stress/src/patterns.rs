//! DRAM test patterns for retention characterization (paper §6.B used
//! "random test patterns").
//!
//! A retention failure discharges a cell towards its leak state; whether
//! a test *detects* the failure depends on whether the written pattern
//! charged that cell. True- and anti-cells invert the mapping, so single
//! fixed patterns see only about half the failures, while re-seeded
//! random passes asymptotically see all of them.

use rand::Rng;
use serde::{Deserialize, Serialize};

use uniserver_silicon::rng::splitmix64;

/// A memory test pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestPattern {
    /// Fresh pseudo-random data per pass (the paper's choice).
    Random {
        /// Seed mixed into each word.
        seed: u64,
    },
    /// Alternating 0xAA…/0x55… stripes.
    Checkerboard,
    /// All bits set.
    AllOnes,
    /// All bits clear.
    AllZeros,
    /// A single one walking through each word.
    WalkingOnes,
}

impl TestPattern {
    /// The data word the pattern writes at word index `i`.
    #[must_use]
    pub fn word_at(self, i: u64) -> u64 {
        match self {
            TestPattern::Random { seed } => splitmix64(i ^ seed),
            TestPattern::Checkerboard => {
                if i.is_multiple_of(2) {
                    0xAAAA_AAAA_AAAA_AAAA
                } else {
                    0x5555_5555_5555_5555
                }
            }
            TestPattern::AllOnes => u64::MAX,
            TestPattern::AllZeros => 0,
            TestPattern::WalkingOnes => 1u64 << (i % 64),
        }
    }

    /// Probability that one retention failure is *detectable* under this
    /// pattern (the failing cell was written to its charged state).
    #[must_use]
    pub fn detection_coverage(self) -> f64 {
        match self {
            // Random data charges any given cell with probability 1/2.
            TestPattern::Random { .. } => 0.5,
            // Fixed patterns also charge ~half the cells once true/anti
            // cell polarity (itself ~50/50) is accounted for.
            TestPattern::Checkerboard | TestPattern::AllOnes | TestPattern::AllZeros => 0.5,
            // Only one bit in 64 is charged.
            TestPattern::WalkingOnes => 1.0 / 64.0,
        }
    }

    /// Thins a raw failure count down to the detected count (binomial
    /// sampling with the pattern's coverage).
    pub fn detected_failures<R: Rng + ?Sized>(self, raw: u64, rng: &mut R) -> u64 {
        let p = self.detection_coverage();
        (0..raw).filter(|_| rng.gen::<f64>() < p).count() as u64
    }

    /// Coverage of `passes` repeated passes. Re-seeded random passes are
    /// independent (coverage grows towards 1); fixed patterns test the
    /// same cells every time (coverage stays flat).
    #[must_use]
    pub fn multi_pass_coverage(self, passes: u32) -> f64 {
        assert!(passes >= 1, "need at least one pass");
        match self {
            TestPattern::Random { .. } => 1.0 - 0.5f64.powi(passes as i32),
            other => other.detection_coverage(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn patterns_produce_expected_words() {
        assert_eq!(TestPattern::AllOnes.word_at(7), u64::MAX);
        assert_eq!(TestPattern::AllZeros.word_at(7), 0);
        assert_eq!(TestPattern::Checkerboard.word_at(0), 0xAAAA_AAAA_AAAA_AAAA);
        assert_eq!(TestPattern::Checkerboard.word_at(1), 0x5555_5555_5555_5555);
        assert_eq!(TestPattern::WalkingOnes.word_at(65), 2);
    }

    #[test]
    fn random_pattern_is_reproducible_and_varied() {
        let p = TestPattern::Random { seed: 42 };
        assert_eq!(p.word_at(10), p.word_at(10));
        assert_ne!(p.word_at(10), p.word_at(11));
        let q = TestPattern::Random { seed: 43 };
        assert_ne!(p.word_at(10), q.word_at(10));
    }

    #[test]
    fn random_words_have_balanced_bits() {
        let p = TestPattern::Random { seed: 7 };
        let ones: u32 = (0..1000).map(|i| p.word_at(i).count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.02, "bit balance {frac}");
    }

    #[test]
    fn detection_thinning_matches_coverage() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = TestPattern::Random { seed: 0 };
        let detected = p.detected_failures(100_000, &mut rng);
        assert!((detected as f64 / 100_000.0 - 0.5).abs() < 0.01);
        let w = TestPattern::WalkingOnes;
        let detected = w.detected_failures(100_000, &mut rng);
        assert!((detected as f64 / 100_000.0 - 1.0 / 64.0).abs() < 0.005);
    }

    #[test]
    fn repeated_random_passes_approach_full_coverage() {
        let p = TestPattern::Random { seed: 0 };
        assert!(p.multi_pass_coverage(1) < p.multi_pass_coverage(4));
        assert!(p.multi_pass_coverage(10) > 0.999);
        // Fixed patterns plateau.
        assert_eq!(
            TestPattern::Checkerboard.multi_pass_coverage(10),
            TestPattern::Checkerboard.detection_coverage()
        );
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn zero_passes_panics() {
        let _ = TestPattern::AllOnes.multi_pass_coverage(0);
    }
}
