//! Genetic generation of stress viruses (paper §3.B, after AUDIT-style
//! automatic stress testing).
//!
//! A virus genome is a sequence of instruction-block kinds, each with a
//! characteristic power draw. The phenotype's droop excitations derive
//! from the *structure* of the sequence:
//!
//! * **activity** — mean power level of the blocks;
//! * **di/dt** — mean step between consecutive block power levels;
//! * **resonance** — spectral energy of the power waveform at the PDN's
//!   resonant period.
//!
//! Maximizing droop therefore requires discovering a square-wave rhythm
//! of high/low-power blocks at the resonance period — a genuinely
//! non-trivial search, which is why the paper reaches for a GA rather
//! than hand enumeration.

use rand::Rng;
use serde::{Deserialize, Serialize};

use uniserver_platform::workload::WorkloadProfile;
use uniserver_silicon::droop::DroopModel;

/// Period (in blocks) at which the modeled PDN resonates.
pub const RESONANCE_PERIOD: usize = 8;

/// One instruction block kind and its characteristic power level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// A stall/NOP stretch.
    Idle,
    /// Scalar integer work.
    Alu,
    /// Wide SIMD bursts (maximum switching).
    Simd,
    /// Streaming memory accesses.
    Mem,
    /// Pointer-chasing cache misses (low activity, long stalls).
    Miss,
}

impl BlockKind {
    /// All block kinds.
    pub const ALL: [BlockKind; 5] =
        [BlockKind::Idle, BlockKind::Alu, BlockKind::Simd, BlockKind::Mem, BlockKind::Miss];

    /// Normalized power level of the block in `[0, 1]`.
    #[must_use]
    pub fn power_level(self) -> f64 {
        match self {
            BlockKind::Idle => 0.04,
            BlockKind::Alu => 0.55,
            BlockKind::Simd => 0.97,
            BlockKind::Mem => 0.45,
            BlockKind::Miss => 0.25,
        }
    }

    /// Samples a uniformly random kind.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::ALL[rng.gen_range(0..Self::ALL.len())]
    }
}

/// A stress-virus genome: a loop of instruction blocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirusGenome {
    blocks: Vec<BlockKind>,
}

impl VirusGenome {
    /// Creates a genome from explicit blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` has fewer than two entries (no waveform).
    #[must_use]
    pub fn new(blocks: Vec<BlockKind>) -> Self {
        assert!(blocks.len() >= 2, "a virus needs at least two blocks");
        VirusGenome { blocks }
    }

    /// Samples a uniformly random genome of the given length.
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        assert!(len >= 2, "a virus needs at least two blocks");
        VirusGenome { blocks: (0..len).map(|_| BlockKind::random(rng)).collect() }
    }

    /// The hand-crafted optimum: a square wave of SIMD bursts and idles
    /// at the resonance period. Used as a reference ceiling in tests.
    #[must_use]
    pub fn resonant_square_wave(len: usize) -> Self {
        assert!(len >= 2, "a virus needs at least two blocks");
        let half = RESONANCE_PERIOD / 2;
        let blocks = (0..len)
            .map(|i| if (i / half).is_multiple_of(2) { BlockKind::Simd } else { BlockKind::Idle })
            .collect();
        VirusGenome { blocks }
    }

    /// The genome's blocks.
    #[must_use]
    pub fn blocks(&self) -> &[BlockKind] {
        &self.blocks
    }

    /// Mean power level (the activity excitation).
    #[must_use]
    pub fn activity(&self) -> f64 {
        self.blocks.iter().map(|b| b.power_level()).sum::<f64>() / self.blocks.len() as f64
    }

    /// Current-swing excitation: the peak-to-peak amplitude of the power
    /// waveform *at the PDN's timescale*, i.e. after smoothing over a
    /// half resonance period (the package inductance cannot see
    /// per-block jitter, only sustained swings). Normalized so an ideal
    /// square wave at the resonance period scores 1.
    #[must_use]
    pub fn didt(&self) -> f64 {
        let n = self.blocks.len();
        let w = (RESONANCE_PERIOD / 2).max(1);
        let max_step = BlockKind::Simd.power_level() - BlockKind::Idle.power_level();
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for start in 0..n {
            let mean: f64 = (0..w)
                .map(|k| self.blocks[(start + k) % n].power_level())
                .sum::<f64>()
                / w as f64;
            lo = lo.min(mean);
            hi = hi.max(mean);
        }
        ((hi - lo) / max_step).clamp(0.0, 1.0)
    }

    /// Spectral energy of the power waveform at [`RESONANCE_PERIOD`],
    /// normalized to `[0, 1]` (the resonance excitation). A square wave
    /// at the period scores ~1; white noise scores near 0.
    #[must_use]
    pub fn resonance(&self) -> f64 {
        let n = self.blocks.len() as f64;
        let omega = 2.0 * std::f64::consts::PI / RESONANCE_PERIOD as f64;
        let (mut re, mut im) = (0.0, 0.0);
        for (i, b) in self.blocks.iter().enumerate() {
            let p = b.power_level();
            re += p * (omega * i as f64).cos();
            im += p * (omega * i as f64).sin();
        }
        let magnitude = (re * re + im * im).sqrt() * 2.0 / n;
        // The fundamental of an ideal square wave of amplitude a/2 is
        // (2/π)·a; normalize against that ceiling.
        let ceiling = (2.0 / std::f64::consts::PI)
            * (BlockKind::Simd.power_level() - BlockKind::Idle.power_level());
        (magnitude / ceiling).clamp(0.0, 1.0)
    }

    /// Derives the phenotype as a workload profile usable anywhere the
    /// platform accepts workloads.
    #[must_use]
    pub fn to_profile(&self, name: impl Into<std::sync::Arc<str>>) -> WorkloadProfile {
        let miss_frac = self
            .blocks
            .iter()
            .filter(|b| matches!(b, BlockKind::Miss | BlockKind::Mem))
            .count() as f64
            / self.blocks.len() as f64;
        WorkloadProfile::new(
            name,
            self.activity(),
            self.didt(),
            self.resonance(),
            (0.2 + 2.2 * self.activity()).max(0.1),
            40.0 * miss_frac,
            miss_frac.min(1.0),
            16,
        )
    }

    /// The droop this virus provokes under a PDN model — the GA fitness.
    #[must_use]
    pub fn fitness(&self, pdn: &DroopModel) -> f64 {
        pdn.droop_fraction(self.activity(), self.didt(), self.resonance())
    }
}

/// Genetic-algorithm configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Genome length in blocks.
    pub genome_len: usize,
    /// Population size.
    pub population: usize,
    /// Number of generations to run.
    pub generations: usize,
    /// Tournament size for selection.
    pub tournament: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Number of elites copied unchanged each generation.
    pub elites: usize,
}

impl GaConfig {
    /// A configuration adequate to converge on the resonant square wave.
    #[must_use]
    pub fn standard() -> Self {
        GaConfig {
            genome_len: 64,
            population: 80,
            generations: 120,
            tournament: 3,
            mutation_rate: 0.02,
            elites: 2,
        }
    }

    /// A fast configuration for tests and doc examples.
    #[must_use]
    pub fn quick() -> Self {
        GaConfig { generations: 25, population: 40, ..GaConfig::standard() }
    }
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig::standard()
    }
}

/// Result of a GA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvolutionReport {
    /// The fittest genome found.
    pub best: VirusGenome,
    /// Best fitness per generation (monotonic thanks to elitism).
    pub best_fitness_history: Vec<f64>,
}

impl EvolutionReport {
    /// Final best fitness.
    ///
    /// # Panics
    ///
    /// Panics if the report is empty (cannot happen for runs with at
    /// least one generation).
    #[must_use]
    pub fn best_fitness(&self) -> f64 {
        *self.best_fitness_history.last().expect("at least one generation")
    }
}

/// Runs the genetic algorithm, evolving a stress virus against the given
/// PDN model.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero population/elites
/// exceeding population/zero generations).
pub fn evolve<R: Rng + ?Sized>(config: &GaConfig, pdn: &DroopModel, rng: &mut R) -> EvolutionReport {
    assert!(config.population >= 2, "population must hold at least two genomes");
    assert!(config.generations >= 1, "need at least one generation");
    assert!(config.elites < config.population, "elites must leave room for offspring");
    assert!(config.tournament >= 1, "tournament size must be at least 1");

    let mut population: Vec<VirusGenome> =
        (0..config.population).map(|_| VirusGenome::random(config.genome_len, rng)).collect();
    let mut history = Vec::with_capacity(config.generations);

    for _ in 0..config.generations {
        let mut scored: Vec<(f64, &VirusGenome)> =
            population.iter().map(|g| (g.fitness(pdn), g)).collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("fitness is finite"));
        history.push(scored[0].0);

        let mut next: Vec<VirusGenome> =
            scored.iter().take(config.elites).map(|(_, g)| (*g).clone()).collect();

        while next.len() < config.population {
            let a = tournament_pick(&scored, config.tournament, rng);
            let b = tournament_pick(&scored, config.tournament, rng);
            let mut child = crossover(a, b, rng);
            mutate(&mut child, config.mutation_rate, rng);
            next.push(child);
        }
        population = next;
    }

    let best = population
        .into_iter()
        .max_by(|a, b| a.fitness(pdn).partial_cmp(&b.fitness(pdn)).expect("finite"))
        .expect("population is non-empty");
    history.push(best.fitness(pdn));
    EvolutionReport { best, best_fitness_history: history }
}

fn tournament_pick<'a, R: Rng + ?Sized>(
    scored: &[(f64, &'a VirusGenome)],
    k: usize,
    rng: &mut R,
) -> &'a VirusGenome {
    let mut best: Option<(f64, &VirusGenome)> = None;
    for _ in 0..k {
        let pick = scored[rng.gen_range(0..scored.len())];
        if best.is_none() || pick.0 > best.expect("set").0 {
            best = Some(pick);
        }
    }
    best.expect("tournament picked at least one").1
}

fn crossover<R: Rng + ?Sized>(a: &VirusGenome, b: &VirusGenome, rng: &mut R) -> VirusGenome {
    let n = a.blocks().len().min(b.blocks().len());
    let cut = rng.gen_range(1..n);
    let blocks = a.blocks()[..cut].iter().chain(&b.blocks()[cut..n]).copied().collect();
    VirusGenome::new(blocks)
}

fn mutate<R: Rng + ?Sized>(genome: &mut VirusGenome, rate: f64, rng: &mut R) {
    for i in 0..genome.blocks.len() {
        if rng.gen::<f64>() < rate {
            genome.blocks[i] = BlockKind::random(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5EED1)
    }

    #[test]
    fn square_wave_maximizes_structure_metrics() {
        let sq = VirusGenome::resonant_square_wave(64);
        assert!(sq.resonance() > 0.9, "resonance {}", sq.resonance());
        assert!(sq.didt() > 0.2, "didt {}", sq.didt());
        // Uniform SIMD has zero didt and zero resonance despite max activity.
        let flat = VirusGenome::new(vec![BlockKind::Simd; 64]);
        assert!(flat.didt() < 1e-9);
        assert!(flat.resonance() < 0.05);
        assert!(flat.activity() > sq.activity());
    }

    #[test]
    fn random_genomes_score_below_square_wave() {
        let pdn = DroopModel::typical_server_pdn();
        let sq = VirusGenome::resonant_square_wave(64).fitness(&pdn);
        let mut r = rng();
        for _ in 0..50 {
            let g = VirusGenome::random(64, &mut r);
            assert!(g.fitness(&pdn) < sq, "random genome out-scored the square wave");
        }
    }

    #[test]
    fn evolution_improves_fitness() {
        let pdn = DroopModel::typical_server_pdn();
        let mut r = rng();
        let report = evolve(&GaConfig::quick(), &pdn, &mut r);
        let first = report.best_fitness_history[0];
        let last = report.best_fitness();
        assert!(last > first, "GA failed to improve: {first} -> {last}");
    }

    #[test]
    fn elitism_makes_progress_monotonic() {
        let pdn = DroopModel::typical_server_pdn();
        let mut r = rng();
        let report = evolve(&GaConfig::quick(), &pdn, &mut r);
        for w in report.best_fitness_history.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "fitness regressed: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn evolved_virus_beats_every_spec_workload() {
        let pdn = DroopModel::typical_server_pdn();
        let mut r = rng();
        let report = evolve(&GaConfig::standard(), &pdn, &mut r);
        let virus_droop = report.best_fitness();
        for w in uniserver_platform::workload::WorkloadProfile::spec2006_subset() {
            let d = w.droop_fraction(&pdn);
            assert!(
                virus_droop > d,
                "virus ({virus_droop:.3}) must out-droop {} ({d:.3})",
                w.name
            );
        }
        // And it approaches the square-wave ceiling.
        let ceiling = VirusGenome::resonant_square_wave(64).fitness(&pdn);
        assert!(virus_droop > 0.9 * ceiling, "virus {virus_droop} vs ceiling {ceiling}");
    }

    #[test]
    fn phenotype_is_a_valid_workload() {
        let mut r = rng();
        let g = VirusGenome::random(32, &mut r);
        let w = g.to_profile("ga-virus");
        assert_eq!(&*w.name, "ga-virus");
        assert!((0.0..=1.0).contains(&w.activity));
        assert!((0.0..=1.0).contains(&w.didt));
        assert!((0.0..=1.0).contains(&w.resonance));
    }

    #[test]
    fn determinism_from_seed() {
        let pdn = DroopModel::typical_server_pdn();
        let a = evolve(&GaConfig::quick(), &pdn, &mut StdRng::seed_from_u64(5));
        let b = evolve(&GaConfig::quick(), &pdn, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_fitness_history, b.best_fitness_history);
    }

    #[test]
    #[should_panic(expected = "at least two blocks")]
    fn degenerate_genome_panics() {
        let _ = VirusGenome::new(vec![BlockKind::Idle]);
    }
}
