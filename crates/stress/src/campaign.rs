//! Characterization campaigns: the pre-deployment stress tests that
//! reveal Extended Operating Points (paper §3).
//!
//! * [`ShmooCampaign`] reproduces the paper's §6.A methodology: for each
//!   core, for each benchmark, for several consecutive runs, lower the
//!   voltage in small steps until the system crashes, recording cache
//!   ECC corrections on the way down. [`Table2Summary`] condenses the
//!   raw results into exactly the rows of Table 2.
//!
//!   By default the descent is **two-pass**: a coarse ladder (a
//!   [`ShmooCampaign::coarse_factor`] multiple of `step_mv` per step)
//!   finds the crash region quickly, then the sweep reboots, backtracks
//!   to the last safe coarse point and refines at `step_mv` on the same
//!   fine lattice a single-pass sweep would have visited. Deployment
//!   characterization gets ~`coarse_factor`× fewer dwell intervals per
//!   ladder while the reported crash offset stays within one fine step
//!   (statistically) of the single-pass methodology, which remains
//!   available via [`ShmooCampaign::single_pass`].
//! * [`RefreshSweep`] reproduces §6.B: relax the refresh interval of a
//!   DIMM step by step, run pattern tests, and record raw bit errors,
//!   BER and the refresh power recovered.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use uniserver_units::{BitErrorRate, Celsius, Seconds, Volts, Watts};

use uniserver_platform::dram::MemorySystem;
use uniserver_platform::node::ServerNode;
use uniserver_platform::part::PartSpec;
use uniserver_platform::workload::WorkloadProfile;
use uniserver_silicon::power::DramPowerModel;
use uniserver_silicon::{ErrorSeverity, FaultKind};

use crate::patterns::TestPattern;

/// Configuration of an undervolting shmoo campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShmooCampaign {
    /// Voltage step between points (the paper's offsets move in small
    /// steps; 5 mV here).
    pub step_mv: f64,
    /// Dwell time per step.
    pub dwell: Seconds,
    /// Consecutive runs per (core, benchmark) pair — the paper uses 3.
    pub runs: usize,
    /// Fractional offset where the sweep starts (safely above any crash).
    pub start_offset_fraction: f64,
    /// Fractional offset where the sweep gives up.
    pub max_offset_fraction: f64,
    /// Coarse-pass step multiplier of the two-pass (coarse→fine)
    /// descent. `1` selects the legacy single-pass ladder; the default
    /// methodology uses `4` (20 mV coarse steps refined at 5 mV).
    pub coarse_factor: usize,
}

impl ShmooCampaign {
    /// The paper's §6.A methodology. The sweep starts essentially at
    /// nominal: a part that crashes at the very first step must be
    /// certified with *zero* safe margin, not with the sweep's entry
    /// offset (outlier dies crash shallower than any fixed entry point).
    #[must_use]
    pub fn paper_methodology() -> Self {
        ShmooCampaign {
            step_mv: 5.0,
            dwell: Seconds::from_millis(500.0),
            runs: 3,
            start_offset_fraction: 0.005,
            max_offset_fraction: 0.30,
            coarse_factor: 4,
        }
    }

    /// The paper's literal single-pass descent: every point on the fine
    /// lattice is dwelled on. Kept for equivalence tests against the
    /// two-pass default and as the conservative fallback.
    #[must_use]
    pub fn single_pass() -> Self {
        ShmooCampaign { coarse_factor: 1, ..ShmooCampaign::paper_methodology() }
    }

    /// Runs the campaign for a part instance (manufactured
    /// deterministically from `seed`) over the given workloads.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty or the configuration is degenerate.
    #[must_use]
    pub fn run(&self, spec: &PartSpec, seed: u64, workloads: &[WorkloadProfile]) -> ShmooResult {
        let mut node = ServerNode::new(spec.clone(), seed);
        self.run_on(&mut node, workloads)
    }

    /// Runs the campaign on an *existing* node — the StressLog daemon's
    /// entry point when re-characterizing a deployed machine.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty or the configuration is degenerate.
    #[must_use]
    pub fn run_on(&self, node: &mut ServerNode, workloads: &[WorkloadProfile]) -> ShmooResult {
        assert!(!workloads.is_empty(), "need at least one workload");
        assert!(self.step_mv > 0.0, "step must be positive");
        assert!(self.runs >= 1, "need at least one run");
        assert!(self.coarse_factor >= 1, "coarse factor must be at least 1");
        assert!(
            self.start_offset_fraction < self.max_offset_fraction,
            "start offset must be below the bail-out offset"
        );

        let spec = node.part().clone();
        let nominal_mv = spec.nominal_voltage.as_millivolts();
        let mut results = Vec::new();
        // Shallowest crash observed so far per core: later ladders on
        // the same core warm-start their coarse pass just above it
        // instead of re-walking the whole safe region (with a full
        // rescan fallback if the warm start proves too deep).
        let mut shallowest: Vec<Option<f64>> = vec![None; node.core_count()];

        for (core, shallowest) in shallowest.iter_mut().enumerate() {
            // Pin the benchmark to the core under test, as the paper does
            // per-core: everything else is parked.
            for other in 0..node.core_count() {
                if other != core {
                    node.isolate_core(other);
                }
            }
            for workload in workloads {
                for run in 0..self.runs {
                    let r = self.sweep_one(node, core, workload, run, nominal_mv, *shallowest);
                    *shallowest =
                        Some(shallowest.map_or(r.crash_offset_mv, |s| s.min(r.crash_offset_mv)));
                    results.push(r);
                }
            }
            for other in 0..node.core_count() {
                node.restore_core(other);
            }
        }
        node.reboot();
        ShmooResult {
            part_name: spec.name.clone(),
            nominal: spec.nominal_voltage,
            step_mv: self.step_mv,
            runs: results,
        }
    }

    /// One downward voltage ladder on one core: coarse→fine two-pass by
    /// default, single-pass when `coarse_factor == 1`.
    ///
    /// `warm_hint` is the shallowest crash offset already observed on
    /// this core (any workload/run). The coarse pass then enters two
    /// coarse steps above it — on the same fine lattice — instead of
    /// walking the whole safe region. A warm entry that crashes at its
    /// very first probe proves nothing about the points above it, so the
    /// sweep falls back to a full rescan from the true start. The
    /// guarantee is statistical, like the coarse→fine equivalence
    /// itself: a crash surface genuinely shallower than the warm entry
    /// crashes that first probe with near-certainty (the crash sigmoid
    /// saturates within a few mV), and a surface close enough to the
    /// entry to survive the probe can only shift the certified offset by
    /// that same few-mV transition width — within one fine step.
    fn sweep_one(
        &self,
        node: &mut ServerNode,
        core: usize,
        workload: &WorkloadProfile,
        run: usize,
        nominal_mv: f64,
        warm_hint: Option<f64>,
    ) -> CoreRunResult {
        node.reboot();
        let start_mv = nominal_mv * self.start_offset_fraction;
        // The sweep range is a fraction of nominal, but the MSR offset
        // field saturates at a fixed hardware limit; high-nominal parts
        // would otherwise request offsets the register cannot express.
        let max_mv = (nominal_mv * self.max_offset_fraction).min(node.msr.offset_limit_mv());
        let mut ce = CeTrack::default();

        let crash_mv = if self.coarse_factor <= 1 {
            // The paper's literal methodology ignores warm hints: every
            // single-pass ladder walks the full range.
            self.ladder(node, core, workload, start_mv, self.step_mv, max_mv, &mut ce)
        } else {
            let coarse_mv = self.step_mv * self.coarse_factor as f64;
            let mut coarse_start = match warm_hint {
                // Snap the warm entry onto the fine lattice so every
                // probed point matches one a single-pass sweep visits.
                Some(hint) => {
                    let steps = ((hint - 2.0 * coarse_mv - start_mv) / self.step_mv).floor();
                    start_mv + steps.max(0.0) * self.step_mv
                }
                None => start_mv,
            };
            loop {
                match self.ladder(node, core, workload, coarse_start, coarse_mv, max_mv, &mut ce) {
                    // Never crashed even in coarse steps: nothing to refine.
                    None => break None,
                    Some(coarse_crash_mv) => {
                        if coarse_crash_mv == coarse_start && coarse_start > start_mv {
                            // Crash on the warm entry point itself: the
                            // hint was too deep. Rescan from the top.
                            ce = CeTrack::default();
                            node.reboot();
                            coarse_start = start_mv;
                            continue;
                        }
                        // Backtrack to one fine step past the last *safe*
                        // coarse point and refine. Because `coarse_mv` is
                        // an exact multiple of `step_mv`, the fine pass
                        // walks the same lattice a single-pass sweep
                        // would have, so the refined crash offset lands
                        // within one fine step of the single-pass
                        // methodology. Should the fine pass stochastically
                        // survive past the coarse crash point all the way
                        // to the bail-out, the coarse crash is still a
                        // *witnessed* crash — certify it rather than
                        // reporting the run crash-free.
                        node.reboot();
                        let fine_start = (coarse_crash_mv - coarse_mv + self.step_mv).max(start_mv);
                        break self
                            .ladder(node, core, workload, fine_start, self.step_mv, max_mv, &mut ce)
                            .or(Some(coarse_crash_mv));
                    }
                }
            }
        };

        let crash_offset_mv = crash_mv.unwrap_or(max_mv);
        CoreRunResult {
            core,
            workload: workload.name.clone(),
            run,
            crash_offset_mv,
            crash_offset_fraction: crash_offset_mv / nominal_mv,
            cache_ce_total: ce.total,
            ce_window_mv: ce.first_offset_mv.map(|f| crash_offset_mv - f),
        }
    }

    /// One monotone descent from `start_mv` in `step` increments.
    /// Returns the crash offset, or `None` when the ladder bails at
    /// `max_mv` without crashing. Cache-CE statistics accumulate into
    /// `ce` across passes.
    #[allow(clippy::too_many_arguments)]
    fn ladder(
        &self,
        node: &mut ServerNode,
        core: usize,
        workload: &WorkloadProfile,
        start_mv: f64,
        step: f64,
        max_mv: f64,
        ce: &mut CeTrack,
    ) -> Option<f64> {
        let mut offset_mv = start_mv;
        loop {
            node.msr
                .set_voltage_offset(core, offset_mv)
                .expect("campaign offsets stay within MSR limits");
            let report = node.run_interval(workload, self.dwell);
            let ces: u64 = report
                .errors
                .iter()
                .filter(|e| e.kind == FaultKind::CacheBit && e.severity == ErrorSeverity::Corrected)
                .count() as u64;
            if ces > 0 {
                ce.total += ces;
                // The *shallowest* offset that ever exposed a CE defines
                // the window start, across both passes.
                ce.first_offset_mv =
                    Some(ce.first_offset_mv.map_or(offset_mv, |f: f64| f.min(offset_mv)));
            }
            if report.crash.is_some() {
                return Some(offset_mv);
            }
            offset_mv += step;
            if offset_mv > max_mv {
                return None;
            }
        }
    }
}

/// Cache-CE bookkeeping carried across the passes of one ladder.
#[derive(Debug, Default)]
struct CeTrack {
    total: u64,
    first_offset_mv: Option<f64>,
}

impl Default for ShmooCampaign {
    fn default() -> Self {
        ShmooCampaign::paper_methodology()
    }
}

/// Outcome of one voltage ladder: one (core, benchmark, run) triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreRunResult {
    /// Core under test.
    pub core: usize,
    /// Benchmark name (shared with the workload profile).
    pub workload: Arc<str>,
    /// Run index within the triple of consecutive runs.
    pub run: usize,
    /// Offset below nominal at which the system crashed, in millivolts.
    pub crash_offset_mv: f64,
    /// The same offset as a fraction of nominal.
    pub crash_offset_fraction: f64,
    /// Total cache corrected errors observed during the ladder.
    pub cache_ce_total: u64,
    /// Width of the CE window: millivolts between the first observed CE
    /// and the crash point (`None` when no CE was ever observed).
    pub ce_window_mv: Option<f64>,
}

/// Raw result of a shmoo campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShmooResult {
    /// Part the campaign ran on.
    pub part_name: String,
    /// Nominal voltage of the part.
    pub nominal: Volts,
    /// Voltage step used.
    pub step_mv: f64,
    /// All ladder outcomes.
    pub runs: Vec<CoreRunResult>,
}

impl ShmooResult {
    /// Distinct benchmark names, in first-seen order.
    #[must_use]
    pub fn workloads(&self) -> Vec<Arc<str>> {
        let mut names: Vec<Arc<str>> = Vec::new();
        for r in &self.runs {
            // The distinct-name count is tiny (the paper uses 8), so a
            // linear probe on shared pointers beats hashing and, unlike
            // a HashMap, keeps iteration order deterministic.
            if !names.iter().any(|n| n == &r.workload) {
                names.push(r.workload.clone());
            }
        }
        names
    }

    /// Distinct core indices, ascending.
    #[must_use]
    pub fn cores(&self) -> Vec<usize> {
        let mut cores: Vec<usize> = self.runs.iter().map(|r| r.core).collect();
        cores.sort_unstable();
        cores.dedup();
        cores
    }

    /// Groups the runs into per-(benchmark, core) mean crash-offset
    /// cells in one pass: `(workloads, cores, cell means)` with cells
    /// indexed `[workload][core position]`. Every aggregation over the
    /// raw runs (Table 2, margin vectors) goes through this instead of
    /// rescanning the run list per cell.
    #[must_use]
    pub fn mean_offset_cells(&self) -> (Vec<Arc<str>>, Vec<usize>, Vec<Vec<f64>>) {
        let workloads = self.workloads();
        let cores = self.cores();
        let core_pos = |core: usize| cores.binary_search(&core).expect("core seen in first pass");
        let windex = |name: &Arc<str>| {
            workloads.iter().position(|n| n == name).expect("workload seen in first pass")
        };
        let mut sums = vec![vec![(0.0f64, 0u32); cores.len()]; workloads.len()];
        for r in &self.runs {
            let cell = &mut sums[windex(&r.workload)][core_pos(r.core)];
            cell.0 += r.crash_offset_fraction;
            cell.1 += 1;
        }
        let means = sums
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|(sum, n)| {
                        assert!(n > 0, "every (benchmark, core) cell needs at least one run");
                        sum / f64::from(n)
                    })
                    .collect()
            })
            .collect();
        (workloads, cores, means)
    }
}

/// The condensed Table 2 rows for one part.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Summary {
    /// Part the summary describes.
    pub part_name: String,
    /// Min over benchmarks of the mean crash offset, as a percentage.
    pub crash_min_pct: f64,
    /// Max over benchmarks of the mean crash offset, as a percentage.
    pub crash_max_pct: f64,
    /// Min over benchmarks of the core-to-core crash spread, percent.
    pub core_var_min_pct: f64,
    /// Max over benchmarks of the core-to-core crash spread, percent.
    pub core_var_max_pct: f64,
    /// Fewest cache CEs seen in any run that saw at least one (None when
    /// the part never exposes CEs, like the high-end i7).
    pub cache_ce_min: Option<u64>,
    /// Most cache CEs seen in any run.
    pub cache_ce_max: Option<u64>,
    /// Mean CE window (mV above crash where CEs begin), when observed.
    pub mean_ce_window_mv: Option<f64>,
}

impl Table2Summary {
    /// Builds the summary exactly the way the paper describes: "the
    /// crash points present the minimum and maximum offset (as
    /// percentage) from the nominal voltage"; "the core-to-core variation
    /// presents the minimum and maximum variability among all available
    /// cores for the same benchmark. The min and max values refer to the
    /// benchmark that provided the least and the most variability."
    ///
    /// # Panics
    ///
    /// Panics if the result set is empty.
    #[must_use]
    pub fn from_shmoo(result: &ShmooResult) -> Self {
        let (workloads, cores, cells) = result.mean_offset_cells();
        assert!(!workloads.is_empty() && !cores.is_empty(), "empty shmoo result");

        let mut bench_means = Vec::with_capacity(workloads.len());
        let mut bench_spreads = Vec::with_capacity(workloads.len());
        for per_core in &cells {
            let mean = per_core.iter().sum::<f64>() / per_core.len() as f64;
            let spread = per_core.iter().cloned().fold(f64::MIN, f64::max)
                - per_core.iter().cloned().fold(f64::MAX, f64::min);
            bench_means.push(mean);
            bench_spreads.push(spread);
        }

        let ce_runs: Vec<u64> =
            result.runs.iter().map(|r| r.cache_ce_total).filter(|&c| c > 0).collect();
        let windows: Vec<f64> = result.runs.iter().filter_map(|r| r.ce_window_mv).collect();

        Table2Summary {
            part_name: result.part_name.clone(),
            crash_min_pct: bench_means.iter().cloned().fold(f64::MAX, f64::min) * 100.0,
            crash_max_pct: bench_means.iter().cloned().fold(f64::MIN, f64::max) * 100.0,
            core_var_min_pct: bench_spreads.iter().cloned().fold(f64::MAX, f64::min) * 100.0,
            core_var_max_pct: bench_spreads.iter().cloned().fold(f64::MIN, f64::max) * 100.0,
            cache_ce_min: ce_runs.iter().min().copied(),
            cache_ce_max: ce_runs.iter().max().copied(),
            mean_ce_window_mv: if windows.is_empty() {
                None
            } else {
                Some(windows.iter().sum::<f64>() / windows.len() as f64)
            },
        }
    }
}

/// One point of a refresh-interval sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefreshPoint {
    /// Refresh interval under test.
    pub interval: Seconds,
    /// Raw failing bits across all passes.
    pub raw_bit_errors: u64,
    /// Failures actually detected by the pattern.
    pub detected_errors: u64,
    /// Cumulative bit-error rate over all scanned bits.
    pub ber: BitErrorRate,
    /// Module refresh power at this interval.
    pub refresh_power: Watts,
    /// Total module power at this interval (full utilization).
    pub module_power: Watts,
}

/// A refresh-relaxation campaign over one DIMM (paper §6.B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefreshSweep {
    /// Intervals to test, ascending.
    pub intervals: Vec<Seconds>,
    /// DIMM temperature during the sweep.
    pub temp: Celsius,
    /// Test passes per interval.
    pub passes: u32,
    /// Pattern written before each retention wait.
    pub pattern: TestPattern,
    /// Power model used to report the recovered refresh power.
    pub power: DramPowerModel,
}

impl RefreshSweep {
    /// The paper's sweep: 64 ms nominal up to the extreme 5 s point, with
    /// random patterns, on a DIMM at server-room operating temperature.
    #[must_use]
    pub fn paper_sweep() -> Self {
        RefreshSweep {
            intervals: [0.064, 0.128, 0.256, 0.512, 1.0, 1.5, 2.0, 3.0, 5.0]
                .into_iter()
                .map(Seconds::new)
                .collect(),
            temp: Celsius::new(45.0),
            passes: 4,
            pattern: TestPattern::Random { seed: 0x0DD5 },
            power: DramPowerModel::ddr3_8gb(),
        }
    }

    /// Runs the sweep on one DIMM of a memory system.
    ///
    /// # Panics
    ///
    /// Panics if the sweep has no intervals or zero passes.
    #[must_use]
    pub fn run(&self, memory: &mut MemorySystem, dimm: usize, seed: u64) -> Vec<RefreshPoint> {
        assert!(!self.intervals.is_empty(), "sweep needs intervals");
        assert!(self.passes >= 1, "sweep needs at least one pass");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = Vec::with_capacity(self.intervals.len());
        for &interval in &self.intervals {
            let mut raw = 0u64;
            let mut detected = 0u64;
            let mut bits = 0u64;
            for _ in 0..self.passes {
                let scan = memory.scan_dimm(dimm, interval, self.temp, &mut rng);
                raw += scan.raw_bit_errors;
                detected += self.pattern.detected_failures(scan.raw_bit_errors, &mut rng);
                bits += scan.bits;
            }
            points.push(RefreshPoint {
                interval,
                raw_bit_errors: raw,
                detected_errors: detected,
                ber: BitErrorRate::from_counts(raw, bits),
                refresh_power: self.power.refresh_power(interval),
                module_power: self.power.module_power(interval, 1.0),
            });
        }
        points
    }

    /// Longest tested interval with zero *detected* errors.
    #[must_use]
    pub fn max_safe_interval(points: &[RefreshPoint]) -> Option<Seconds> {
        points
            .iter()
            .filter(|p| p.detected_errors == 0)
            .map(|p| p.interval)
            .fold(None, |acc, i| Some(acc.map_or(i, |a: Seconds| a.max(i))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_campaign() -> ShmooCampaign {
        ShmooCampaign { dwell: Seconds::from_millis(200.0), ..ShmooCampaign::paper_methodology() }
    }

    #[test]
    fn i5_summary_lands_in_table2_bands() {
        let shmoo = quick_campaign().run(&PartSpec::i5_4200u(), 2018, &WorkloadProfile::spec2006_subset());
        let t2 = Table2Summary::from_shmoo(&shmoo);
        // Paper: min -10 %, max -11.2 %.
        assert!((9.0..11.5).contains(&t2.crash_min_pct), "crash min {}", t2.crash_min_pct);
        assert!((10.0..13.0).contains(&t2.crash_max_pct), "crash max {}", t2.crash_max_pct);
        assert!(t2.crash_min_pct < t2.crash_max_pct);
        // Paper: core-to-core 0 %…2.7 %.
        assert!(t2.core_var_min_pct >= 0.0);
        assert!(t2.core_var_max_pct <= 4.0, "core var max {}", t2.core_var_max_pct);
        // Paper: 1…17 cache ECC errors, ~15 mV window. The two-pass
        // sweep re-dwells inside the CE window (coarse pass + fine
        // refinement), so per-ladder totals run up to ~2× the paper's
        // single-pass counts.
        let ce_max = t2.cache_ce_max.expect("i5 exposes CEs");
        assert!((1..=64).contains(&ce_max), "ce max {ce_max}");
        let window = t2.mean_ce_window_mv.expect("CE window observed");
        assert!((5.0..30.0).contains(&window), "CE window {window} mV");
    }

    #[test]
    fn i7_summary_lands_in_table2_bands() {
        let shmoo = quick_campaign().run(&PartSpec::i7_3970x(), 2012, &WorkloadProfile::spec2006_subset());
        let t2 = Table2Summary::from_shmoo(&shmoo);
        // Paper: min -8.4 %, max -15.4 %.
        assert!((6.5..11.5).contains(&t2.crash_min_pct), "crash min {}", t2.crash_min_pct);
        assert!((13.0..18.5).contains(&t2.crash_max_pct), "crash max {}", t2.crash_max_pct);
        // Paper: core-to-core 3.7 %…8 %.
        assert!(t2.core_var_max_pct >= 2.0 && t2.core_var_max_pct <= 10.0,
            "core var max {}", t2.core_var_max_pct);
        // Paper: the high-end part never shows cache ECC errors.
        assert_eq!(t2.cache_ce_min, None);
        assert_eq!(t2.cache_ce_max, None);
    }

    #[test]
    fn i7_varies_more_than_i5() {
        let i5 = Table2Summary::from_shmoo(
            &quick_campaign().run(&PartSpec::i5_4200u(), 7, &WorkloadProfile::spec2006_subset()),
        );
        let i7 = Table2Summary::from_shmoo(
            &quick_campaign().run(&PartSpec::i7_3970x(), 7, &WorkloadProfile::spec2006_subset()),
        );
        assert!(i7.core_var_max_pct > i5.core_var_max_pct);
        assert!(
            i7.crash_max_pct - i7.crash_min_pct > i5.crash_max_pct - i5.crash_min_pct,
            "i7 spans a wider crash band"
        );
    }

    #[test]
    fn shmoo_is_deterministic() {
        let w = vec![WorkloadProfile::spec_bzip2()];
        let a = quick_campaign().run(&PartSpec::i5_4200u(), 99, &w);
        let b = quick_campaign().run(&PartSpec::i5_4200u(), 99, &w);
        assert_eq!(a, b);
    }

    #[test]
    fn refresh_sweep_matches_paper_shape() {
        let mut mem = MemorySystem::commodity_server(false); // paper: ECC disabled
        let sweep = RefreshSweep::paper_sweep();
        let points = sweep.run(&mut mem, 3, 11);
        assert_eq!(points.len(), 9);

        // Errors at 64 ms…1.5 s: none (or a stray singleton at 1.5 s).
        for p in points.iter().take(5) {
            assert_eq!(p.raw_bit_errors, 0, "errors at {}", p.interval);
        }
        let p1_5 = &points[5];
        assert!(p1_5.raw_bit_errors <= 2, "1.5 s errors {}", p1_5.raw_bit_errors);

        // 5 s: BER in the order of 1e-9.
        let p5 = points.last().unwrap();
        assert!(p5.raw_bit_errors > 0);
        assert!(p5.ber.value() > 1e-10 && p5.ber.value() < 1e-8, "BER {}", p5.ber);
        assert!(p5.ber.is_correctable_by_secded());

        // Refresh power falls monotonically with relaxation.
        for w in points.windows(2) {
            assert!(w[1].refresh_power <= w[0].refresh_power);
        }
        // The safe interval found is at least the paper's 1.5 s.
        let safe = RefreshSweep::max_safe_interval(&points).expect("some safe interval");
        assert!(safe >= Seconds::new(1.5), "safe interval {safe}");
    }

    #[test]
    fn summary_rejects_empty_results() {
        let empty = ShmooResult {
            part_name: "x".into(),
            nominal: Volts::new(1.0),
            step_mv: 5.0,
            runs: vec![],
        };
        let r = std::panic::catch_unwind(|| Table2Summary::from_shmoo(&empty));
        assert!(r.is_err());
    }
}
