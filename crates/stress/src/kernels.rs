//! Hand-coded stress kernels (paper §3.D: the StressLog workload suite
//! includes kernels "hand-coded to stress specific components").
//!
//! Each kernel is expressed as a [`VirusGenome`] (so its excitations are
//! derived, not asserted) plus a ready-made [`WorkloadProfile`]. They
//! bracket the GA: the droop resonator is near-optimal for the PDN, the
//! cache and memory hammers target SRAM/DRAM instead.

use uniserver_platform::workload::WorkloadProfile;

use crate::genetic::{BlockKind, VirusGenome, RESONANCE_PERIOD};

/// A power virus: sustained maximum switching activity (thermal/IR
/// stress, not resonance).
#[must_use]
pub fn power_virus() -> WorkloadProfile {
    VirusGenome::new(vec![BlockKind::Simd; 64]).to_profile("power-virus")
}

/// A droop resonator: SIMD/idle square wave at the PDN resonance period.
/// This is the "pathogenic worst case scenario that is unlikely to be
/// encountered in real-life workloads" (§3.B).
#[must_use]
pub fn droop_resonator() -> WorkloadProfile {
    VirusGenome::resonant_square_wave(64).to_profile("droop-resonator")
}

/// A cache thrasher: pointer chases that hammer the LLC with misses,
/// keeping SRAM peripheral circuits busy at low voltage.
#[must_use]
pub fn cache_thrash() -> WorkloadProfile {
    let blocks = (0..64)
        .map(|i| if i % 2 == 0 { BlockKind::Miss } else { BlockKind::Mem })
        .collect();
    VirusGenome::new(blocks).to_profile("cache-thrash")
}

/// A memory hammer: streaming writes that maximize DRAM bandwidth and
/// row activations (retention-test companion).
#[must_use]
pub fn memory_hammer() -> WorkloadProfile {
    let blocks = (0..64)
        .map(|i| if i % 8 == 7 { BlockKind::Alu } else { BlockKind::Mem })
        .collect();
    VirusGenome::new(blocks).to_profile("memory-hammer")
}

/// The full hand-coded suite, in a stable order.
#[must_use]
pub fn suite() -> Vec<WorkloadProfile> {
    vec![power_virus(), droop_resonator(), cache_thrash(), memory_hammer()]
}

/// Sanity constant re-exported for callers that align phases to the
/// resonator (equal to [`RESONANCE_PERIOD`]).
pub const RESONATOR_PERIOD: usize = RESONANCE_PERIOD;

#[cfg(test)]
mod tests {
    use super::*;
    use uniserver_silicon::droop::DroopModel;

    #[test]
    fn resonator_droops_hardest() {
        let pdn = DroopModel::typical_server_pdn();
        let resonator = droop_resonator().droop_fraction(&pdn);
        for k in suite() {
            assert!(
                k.droop_fraction(&pdn) <= resonator,
                "{} out-droops the resonator",
                k.name
            );
        }
    }

    #[test]
    fn resonator_beats_spec_by_a_margin() {
        let pdn = DroopModel::typical_server_pdn();
        let resonator = droop_resonator().droop_fraction(&pdn);
        let worst_spec = WorkloadProfile::spec2006_subset()
            .iter()
            .map(|w| w.droop_fraction(&pdn))
            .fold(f64::MIN, f64::max);
        // "Safety margins are more pessimistic than these worst-case
        // viruses" and real workloads droop much less (§3.B).
        assert!(resonator > 1.3 * worst_spec, "resonator {resonator} vs worst SPEC {worst_spec}");
    }

    #[test]
    fn power_virus_has_max_activity_but_no_resonance() {
        let v = power_virus();
        assert!(v.activity > 0.9);
        assert!(v.resonance < 0.05);
        assert!(v.didt < 0.05);
    }

    #[test]
    fn hammers_target_memory() {
        assert!(cache_thrash().cache_mpki > 30.0);
        assert!(memory_hammer().mem_bw_util > 0.8);
    }

    #[test]
    fn suite_is_stable() {
        let names: Vec<String> = suite().into_iter().map(|w| w.name.to_string()).collect();
        assert_eq!(names, ["power-virus", "droop-resonator", "cache-thrash", "memory-hammer"]);
    }
}
