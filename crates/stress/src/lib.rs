//! Stress-test development and characterization campaigns (paper §3).
//!
//! UniServer reveals Extended Operating Points by stress-testing each
//! hardware component: "we will stress the underlying cores and memories
//! using diagnostic viruses. We plan to use genetic algorithms for
//! generating these viruses" (§3.B). This crate provides:
//!
//! * [`kernels`] — hand-coded stress kernels targeting specific
//!   components (power virus, cache thrash, droop resonator, …);
//! * [`genetic`] — the genetic algorithm that *evolves* maximum-noise
//!   viruses from instruction-block genomes;
//! * [`patterns`] — DRAM test patterns for retention testing;
//! * [`campaign`] — the characterization campaigns themselves: the
//!   undervolting shmoo that regenerates Table 2 and the refresh sweep
//!   that regenerates the §6.B DRAM results.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use uniserver_stress::genetic::{GaConfig, evolve};
//! use uniserver_silicon::droop::DroopModel;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let pdn = DroopModel::typical_server_pdn();
//! let report = evolve(&GaConfig::quick(), &pdn, &mut rng);
//! // The evolved virus must out-droop a random genome.
//! assert!(report.best_fitness_history.last().unwrap() > report.best_fitness_history.first().unwrap());
//! ```

pub mod campaign;
pub mod genetic;
pub mod kernels;
pub mod patterns;

pub use campaign::{RefreshSweep, ShmooCampaign, Table2Summary};
pub use genetic::{evolve, GaConfig, VirusGenome};
