//! The chaos engine: seeded fault campaigns against a serving cluster.
//!
//! Where the SDC campaign (this crate's root module) corrupts one
//! hypervisor's objects in isolation, the chaos engine attacks a *rack*:
//! independent per-node crash draws, correlated rack/PSU failures that
//! take out a contiguous block of node indices at once, and cooling
//! failures that step the ambient temperature for a window. Campaigns
//! compose — a [`ChaosPlan`] is just a list — and stack with the traffic
//! engine's flash crowds, so a headline run can lose an eighth of its
//! rack in the middle of a demand spike.
//!
//! Everything is a pure function of `(seed, tick)` via the workspace's
//! SplitMix64 sub-stream convention ([`salt::CHAOS`],
//! [`salt::CHAOS_RACK`]): the same plan replayed at any worker count
//! injects the same faults at the same ticks into the same nodes. The
//! engine deliberately knows nothing about the cluster — it yields node
//! *indices* and ambient deltas; the orchestrator owns turning those
//! into crash events and MSR writes.

use serde::{Deserialize, Serialize};

use uniserver_silicon::rng::{salt, splitmix64, unit_fraction};

/// One fault campaign of a chaos plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Campaign {
    /// Independent node crashes: each online node fails a seeded
    /// Bernoulli trial every tick of the window.
    NodeCrashes {
        /// Expected crashes per node per hour of simulated time.
        rate_per_node_hour: f64,
        /// First tick of the window (inclusive).
        from_tick: u64,
        /// Last tick of the window (exclusive); `u64::MAX` = open-ended.
        until_tick: u64,
    },
    /// A correlated rack/PSU failure: one contiguous block of node
    /// indices crashes in the same tick. The block's start is a seeded
    /// draw; its width is a fraction of the fleet.
    RackFailure {
        /// The tick the PSU dies.
        at_tick: u64,
        /// Fraction of the fleet in the blast radius, `(0, 1]`.
        blast_fraction: f64,
    },
    /// A cooling failure: the ambient (inlet) temperature of every node
    /// steps up by `ambient_delta_c` for `duration_ticks`, then recovers.
    CoolingFailure {
        /// The tick the CRAC unit fails.
        at_tick: u64,
        /// How long the hot window lasts, in ticks.
        duration_ticks: u64,
        /// Ambient step while the cooling is down, in °C.
        ambient_delta_c: f64,
    },
    /// A gray failure: instead of crashing, each online node fails a
    /// seeded Bernoulli trial every tick of the window and *degrades* —
    /// an elevated correctable-error rate plus a thermal-throttle
    /// capacity cap — for a seeded duration, then silently recovers.
    /// The node keeps serving the whole time; only the health watchdog
    /// can tell it has gone gray.
    GrayFailure {
        /// Expected onsets per node per hour of simulated time.
        rate_per_node_hour: f64,
        /// First tick of the window (inclusive).
        from_tick: u64,
        /// Last tick of the window (exclusive); `u64::MAX` = open-ended.
        until_tick: u64,
        /// CE-rate multiplier while the fault is active (≥ 1).
        ce_multiplier: f64,
        /// Usable fraction of nominal vCPU capacity while degraded,
        /// `(0, 1]` — the thermal-throttle cap.
        capacity_cap: f64,
        /// Shortest seeded fault duration, in ticks (≥ 1).
        min_duration_ticks: u64,
        /// Longest seeded fault duration, in ticks (inclusive).
        max_duration_ticks: u64,
    },
    /// A brownout: the facility feed is capped at `watts` for a window
    /// and the fleet must gracefully degrade — park, throttle and shed
    /// bronze-first — until it fits. The engine only declares the cap;
    /// the orchestrator owns the response and charges the SLA cost.
    PowerCap {
        /// The facility cap, in watts.
        watts: f64,
        /// The tick the brownout begins.
        from_tick: u64,
        /// How long the cap stays in force, in ticks.
        duration_ticks: u64,
    },
}

/// One node's gray-failure onset: which node degrades, how hard, and
/// for how long. Yielded by [`ChaosPlan::gray_onsets_at`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayOnset {
    /// The fleet index of the degrading node.
    pub node: u32,
    /// CE-rate multiplier while the fault is active.
    pub ce_multiplier: f64,
    /// Usable fraction of nominal vCPU capacity while degraded.
    pub capacity_cap: f64,
    /// Seeded fault duration, in ticks.
    pub duration_ticks: u64,
}

/// A seeded schedule of fault campaigns.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// The campaigns, applied independently each tick.
    pub campaigns: Vec<Campaign>,
}

impl ChaosPlan {
    /// No chaos — every query returns nothing.
    #[must_use]
    pub fn none() -> Self {
        ChaosPlan { campaigns: Vec::new() }
    }

    /// The headline fault profile for a `ticks`-long horizon: a steady
    /// background of independent node crashes (0.15 per node-hour), a
    /// rack/PSU failure taking out 12.5 % of the fleet a third of the
    /// way in, and a cooling failure stepping ambient +12 °C for a
    /// sixth of the horizon starting at the halfway mark — deliberately
    /// overlapping the flash-crowd traffic preset so lost capacity
    /// meets peak demand.
    #[must_use]
    pub fn rack_and_flash(ticks: u64) -> Self {
        ChaosPlan {
            campaigns: vec![
                Campaign::NodeCrashes {
                    rate_per_node_hour: 0.15,
                    from_tick: 0,
                    until_tick: u64::MAX,
                },
                Campaign::RackFailure { at_tick: ticks / 3, blast_fraction: 0.125 },
                Campaign::CoolingFailure {
                    at_tick: ticks / 2,
                    duration_ticks: ticks / 6,
                    ambient_delta_c: 12.0,
                },
            ],
        }
    }

    /// The headline gray-failure profile for a `ticks`-long horizon
    /// over a `nodes`-wide fleet: a steady background of gray onsets
    /// (1.2 per node-hour, 8× CE rate, capacity throttled to 50 %,
    /// seeded durations spanning 1/24th to 1/6th of the horizon) plus
    /// a brownout capping the facility feed at 24 W/node for the third
    /// quarter of the run. Nodes degrade instead of crashing, so the
    /// watchdog — not the MTTR machinery — carries the whole campaign.
    #[must_use]
    pub fn gray_brownout(ticks: u64, nodes: u32) -> Self {
        ChaosPlan {
            campaigns: vec![
                Campaign::GrayFailure {
                    rate_per_node_hour: 1.2,
                    from_tick: 0,
                    until_tick: u64::MAX,
                    ce_multiplier: 8.0,
                    capacity_cap: 0.5,
                    min_duration_ticks: (ticks / 24).max(6),
                    max_duration_ticks: (ticks / 6).max(12),
                },
                Campaign::PowerCap {
                    watts: f64::from(nodes) * 24.0,
                    from_tick: ticks / 2,
                    duration_ticks: ticks / 4,
                },
            ],
        }
    }

    /// The node indices this plan crashes at `tick`, sorted and
    /// deduplicated. Pure in `(seed, tick)` — the caller may query any
    /// tick in any order.
    ///
    /// # Panics
    ///
    /// Panics if a rack failure's blast fraction is outside `(0, 1]` or
    /// a crash campaign's rate is negative.
    #[must_use]
    pub fn crash_indices_at(
        &self,
        seed: u64,
        tick: u64,
        tick_secs: f64,
        nodes: u32,
    ) -> Vec<u32> {
        let mut hit = Vec::new();
        for campaign in &self.campaigns {
            match *campaign {
                Campaign::NodeCrashes { rate_per_node_hour, from_tick, until_tick } => {
                    assert!(rate_per_node_hour >= 0.0, "crash rate must be non-negative");
                    if tick < from_tick || tick >= until_tick {
                        continue;
                    }
                    let p = (rate_per_node_hour / 3600.0 * tick_secs).min(1.0);
                    for node in 0..nodes {
                        let word = splitmix64(
                            seed ^ salt::CHAOS
                                ^ u64::from(node).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                ^ tick.wrapping_mul(0xBF58_476D_1CE4_E5B9),
                        );
                        if unit_fraction(word) < p {
                            hit.push(node);
                        }
                    }
                }
                Campaign::RackFailure { at_tick, blast_fraction } => {
                    assert!(
                        blast_fraction > 0.0 && blast_fraction <= 1.0,
                        "blast fraction must be in (0, 1], got {blast_fraction}"
                    );
                    if tick != at_tick {
                        continue;
                    }
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let width =
                        ((f64::from(nodes) * blast_fraction).round() as u32).clamp(1, nodes);
                    let span = u64::from(nodes - width) + 1;
                    let word = splitmix64(seed ^ salt::CHAOS_RACK ^ at_tick);
                    #[allow(clippy::cast_possible_truncation)]
                    let start = (word % span) as u32;
                    hit.extend(start..start + width);
                }
                Campaign::CoolingFailure { .. }
                | Campaign::GrayFailure { .. }
                | Campaign::PowerCap { .. } => {}
            }
        }
        hit.sort_unstable();
        hit.dedup();
        hit
    }

    /// The gray-failure onsets this plan fires at `tick`, sorted by
    /// node index and deduplicated (the first campaign in plan order
    /// wins a contested node). Pure in `(seed, tick)` — the caller may
    /// query any tick in any order. The duration draw is chained off
    /// the onset word, so it is equally pure.
    ///
    /// # Panics
    ///
    /// Panics if a gray campaign's rate is negative, its capacity cap
    /// is outside `(0, 1]`, its CE multiplier is below 1, or its
    /// duration bounds are empty or inverted.
    #[must_use]
    pub fn gray_onsets_at(
        &self,
        seed: u64,
        tick: u64,
        tick_secs: f64,
        nodes: u32,
    ) -> Vec<GrayOnset> {
        let mut hit: Vec<GrayOnset> = Vec::new();
        for campaign in &self.campaigns {
            let Campaign::GrayFailure {
                rate_per_node_hour,
                from_tick,
                until_tick,
                ce_multiplier,
                capacity_cap,
                min_duration_ticks,
                max_duration_ticks,
            } = *campaign
            else {
                continue;
            };
            assert!(rate_per_node_hour >= 0.0, "gray rate must be non-negative");
            assert!(
                capacity_cap > 0.0 && capacity_cap <= 1.0,
                "capacity cap must be in (0, 1], got {capacity_cap}"
            );
            assert!(ce_multiplier >= 1.0, "CE multiplier must be at least 1, got {ce_multiplier}");
            assert!(
                min_duration_ticks >= 1 && max_duration_ticks >= min_duration_ticks,
                "duration bounds must satisfy 1 <= min <= max, \
                 got [{min_duration_ticks}, {max_duration_ticks}]"
            );
            if tick < from_tick || tick >= until_tick {
                continue;
            }
            let p = (rate_per_node_hour / 3600.0 * tick_secs).min(1.0);
            let span = max_duration_ticks - min_duration_ticks + 1;
            for node in 0..nodes {
                let word = splitmix64(
                    seed ^ salt::GRAY
                        ^ u64::from(node).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ tick.wrapping_mul(0xBF58_476D_1CE4_E5B9),
                );
                if unit_fraction(word) < p {
                    hit.push(GrayOnset {
                        node,
                        ce_multiplier,
                        capacity_cap,
                        duration_ticks: min_duration_ticks + splitmix64(word) % span,
                    });
                }
            }
        }
        hit.sort_by_key(|o| o.node);
        hit.dedup_by_key(|o| o.node);
        hit
    }

    /// The facility power cap (watts) in force at `tick`, or `None`
    /// when no brownout window covers it — overlapping caps take the
    /// tightest (minimum) value.
    ///
    /// # Panics
    ///
    /// Panics if a power-cap campaign's wattage is not positive.
    #[must_use]
    pub fn power_cap_at(&self, tick: u64) -> Option<f64> {
        self.campaigns
            .iter()
            .filter_map(|c| match *c {
                Campaign::PowerCap { watts, from_tick, duration_ticks } => {
                    assert!(watts > 0.0, "power cap must be positive, got {watts}");
                    (tick >= from_tick && tick < from_tick.saturating_add(duration_ticks))
                        .then_some(watts)
                }
                _ => None,
            })
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Whether this plan contains any gray-failure or power-cap
    /// campaign — the gate for the orchestrator's watchdog loop and
    /// the summary's `gray` object, so legacy profiles stay
    /// byte-identical.
    #[must_use]
    pub fn has_gray(&self) -> bool {
        self.campaigns
            .iter()
            .any(|c| matches!(c, Campaign::GrayFailure { .. } | Campaign::PowerCap { .. }))
    }

    /// The ambient step (°C above the deployment baseline) in force at
    /// `tick` — overlapping cooling failures stack.
    #[must_use]
    pub fn ambient_delta_at(&self, tick: u64) -> f64 {
        self.campaigns
            .iter()
            .map(|c| match *c {
                Campaign::CoolingFailure { at_tick, duration_ticks, ambient_delta_c }
                    if tick >= at_tick && tick < at_tick.saturating_add(duration_ticks) =>
                {
                    ambient_delta_c
                }
                _ => 0.0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_quiet() {
        let plan = ChaosPlan::none();
        for tick in 0..100 {
            assert!(plan.crash_indices_at(1, tick, 5.0, 64).is_empty());
            assert_eq!(plan.ambient_delta_at(tick), 0.0);
        }
    }

    #[test]
    fn crash_draws_are_pure_sorted_and_rate_shaped() {
        let plan = ChaosPlan {
            campaigns: vec![Campaign::NodeCrashes {
                rate_per_node_hour: 2.0,
                from_tick: 10,
                until_tick: 500,
            }],
        };
        let mut total = 0usize;
        for tick in 0..500u64 {
            let a = plan.crash_indices_at(42, tick, 5.0, 256);
            let b = plan.crash_indices_at(42, tick, 5.0, 256);
            assert_eq!(a, b, "draws must be pure in (seed, tick)");
            assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            assert!(tick >= 10 || a.is_empty(), "window not open yet");
            total += a.len();
        }
        // 256 nodes x 490 ticks x (2/3600 x 5) ≈ 348 expected crashes.
        assert!((200..520).contains(&total), "rate shaping is off: {total} crashes");
        let schedule = |seed: u64| -> Vec<Vec<u32>> {
            (0..500).map(|t| plan.crash_indices_at(seed, t, 5.0, 256)).collect()
        };
        assert_ne!(schedule(42), schedule(43), "seeds must decorrelate campaigns");
    }

    #[test]
    fn rack_failure_is_one_contiguous_block_once() {
        let plan = ChaosPlan {
            campaigns: vec![Campaign::RackFailure { at_tick: 240, blast_fraction: 0.125 }],
        };
        for tick in 0..720u64 {
            let hit = plan.crash_indices_at(7, tick, 5.0, 256);
            if tick == 240 {
                assert_eq!(hit.len(), 32, "12.5 % of 256 nodes");
                assert!(
                    hit.windows(2).all(|w| w[1] == w[0] + 1),
                    "blast radius is contiguous: {hit:?}"
                );
                assert!(*hit.last().unwrap() < 256, "blast stays inside the fleet");
            } else {
                assert!(hit.is_empty(), "the PSU dies exactly once");
            }
        }
        // Tiny fleets still lose at least one node.
        let small = plan.crash_indices_at(7, 240, 5.0, 4);
        assert_eq!(small.len(), 1);
    }

    #[test]
    fn cooling_failure_steps_ambient_for_its_window() {
        let plan = ChaosPlan {
            campaigns: vec![Campaign::CoolingFailure {
                at_tick: 100,
                duration_ticks: 50,
                ambient_delta_c: 12.0,
            }],
        };
        assert_eq!(plan.ambient_delta_at(99), 0.0);
        assert_eq!(plan.ambient_delta_at(100), 12.0);
        assert_eq!(plan.ambient_delta_at(149), 12.0);
        assert_eq!(plan.ambient_delta_at(150), 0.0);
        assert!(plan.crash_indices_at(1, 100, 5.0, 64).is_empty(), "heat is not a crash");
    }

    #[test]
    fn gray_onsets_are_pure_windowed_and_never_crash() {
        let plan = ChaosPlan {
            campaigns: vec![Campaign::GrayFailure {
                rate_per_node_hour: 4.0,
                from_tick: 20,
                until_tick: 400,
                ce_multiplier: 8.0,
                capacity_cap: 0.5,
                min_duration_ticks: 6,
                max_duration_ticks: 30,
            }],
        };
        let mut total = 0usize;
        for tick in 0..500u64 {
            let a = plan.gray_onsets_at(42, tick, 5.0, 256);
            let b = plan.gray_onsets_at(42, tick, 5.0, 256);
            assert_eq!(a, b, "onsets must be pure in (seed, tick)");
            assert!(a.windows(2).all(|w| w[0].node < w[1].node), "sorted, deduped");
            assert!((20..400).contains(&tick) || a.is_empty(), "window respected");
            for onset in &a {
                assert!((6..=30).contains(&onset.duration_ticks), "duration inside bounds");
                assert_eq!(onset.ce_multiplier, 8.0);
                assert_eq!(onset.capacity_cap, 0.5);
            }
            assert!(plan.crash_indices_at(42, tick, 5.0, 256).is_empty(), "gray never crashes");
            total += a.len();
        }
        // 256 nodes x 380 ticks x (4/3600 x 5) ≈ 540 expected onsets.
        assert!((350..750).contains(&total), "rate shaping is off: {total} onsets");
        let durations = |seed: u64| -> Vec<u64> {
            (0..500)
                .flat_map(|t| plan.gray_onsets_at(seed, t, 5.0, 256))
                .map(|o| o.duration_ticks)
                .collect()
        };
        assert_ne!(durations(42), durations(43), "seeds must decorrelate onsets");
    }

    #[test]
    fn power_cap_covers_its_window_and_overlaps_take_the_tightest() {
        let plan = ChaosPlan {
            campaigns: vec![
                Campaign::PowerCap { watts: 1536.0, from_tick: 90, duration_ticks: 45 },
                Campaign::PowerCap { watts: 1200.0, from_tick: 100, duration_ticks: 10 },
            ],
        };
        assert_eq!(plan.power_cap_at(89), None);
        assert_eq!(plan.power_cap_at(90), Some(1536.0));
        assert_eq!(plan.power_cap_at(100), Some(1200.0), "overlap takes the minimum");
        assert_eq!(plan.power_cap_at(110), Some(1536.0));
        assert_eq!(plan.power_cap_at(134), Some(1536.0));
        assert_eq!(plan.power_cap_at(135), None);
        assert!(plan.crash_indices_at(1, 90, 5.0, 64).is_empty(), "a brownout is not a crash");
        assert!(plan.gray_onsets_at(1, 90, 5.0, 64).is_empty(), "or a gray onset");
    }

    #[test]
    fn gray_gate_distinguishes_plans() {
        assert!(!ChaosPlan::none().has_gray());
        assert!(!ChaosPlan::rack_and_flash(720).has_gray());
        let gray = ChaosPlan::gray_brownout(720, 256);
        assert!(gray.has_gray());
        assert!(gray.power_cap_at(360).is_some(), "brownout covers the third quarter");
        assert!(gray.power_cap_at(0).is_none());
        assert!(
            (0..720).any(|t| !gray.gray_onsets_at(11, t, 5.0, 256).is_empty()),
            "the background gray campaign fires"
        );
        assert!(
            (0..720).all(|t| gray.crash_indices_at(11, t, 5.0, 256).is_empty()),
            "the gray profile never hard-crashes a node"
        );
    }

    #[test]
    fn campaigns_compose() {
        let plan = ChaosPlan::rack_and_flash(720);
        let rack_tick = 240u64;
        let hit = plan.crash_indices_at(9, rack_tick, 5.0, 256);
        assert!(hit.len() >= 32, "rack blast plus background crashes");
        assert!(hit.windows(2).all(|w| w[0] < w[1]), "merged draws stay sorted/deduped");
        assert_eq!(plan.ambient_delta_at(360), 12.0, "cooling fails at the halfway mark");
        let crashes_somewhere: usize =
            (0..720).map(|t| plan.crash_indices_at(9, t, 5.0, 256).len()).sum();
        assert!(crashes_somewhere > 32, "background campaign fires too");
    }
}
