//! The chaos engine: seeded fault campaigns against a serving cluster.
//!
//! Where the SDC campaign (this crate's root module) corrupts one
//! hypervisor's objects in isolation, the chaos engine attacks a *rack*:
//! independent per-node crash draws, correlated rack/PSU failures that
//! take out a contiguous block of node indices at once, and cooling
//! failures that step the ambient temperature for a window. Campaigns
//! compose — a [`ChaosPlan`] is just a list — and stack with the traffic
//! engine's flash crowds, so a headline run can lose an eighth of its
//! rack in the middle of a demand spike.
//!
//! Everything is a pure function of `(seed, tick)` via the workspace's
//! SplitMix64 sub-stream convention ([`salt::CHAOS`],
//! [`salt::CHAOS_RACK`]): the same plan replayed at any worker count
//! injects the same faults at the same ticks into the same nodes. The
//! engine deliberately knows nothing about the cluster — it yields node
//! *indices* and ambient deltas; the orchestrator owns turning those
//! into crash events and MSR writes.

use serde::{Deserialize, Serialize};

use uniserver_silicon::rng::{salt, splitmix64, unit_fraction};

/// One fault campaign of a chaos plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Campaign {
    /// Independent node crashes: each online node fails a seeded
    /// Bernoulli trial every tick of the window.
    NodeCrashes {
        /// Expected crashes per node per hour of simulated time.
        rate_per_node_hour: f64,
        /// First tick of the window (inclusive).
        from_tick: u64,
        /// Last tick of the window (exclusive); `u64::MAX` = open-ended.
        until_tick: u64,
    },
    /// A correlated rack/PSU failure: one contiguous block of node
    /// indices crashes in the same tick. The block's start is a seeded
    /// draw; its width is a fraction of the fleet.
    RackFailure {
        /// The tick the PSU dies.
        at_tick: u64,
        /// Fraction of the fleet in the blast radius, `(0, 1]`.
        blast_fraction: f64,
    },
    /// A cooling failure: the ambient (inlet) temperature of every node
    /// steps up by `ambient_delta_c` for `duration_ticks`, then recovers.
    CoolingFailure {
        /// The tick the CRAC unit fails.
        at_tick: u64,
        /// How long the hot window lasts, in ticks.
        duration_ticks: u64,
        /// Ambient step while the cooling is down, in °C.
        ambient_delta_c: f64,
    },
}

/// A seeded schedule of fault campaigns.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// The campaigns, applied independently each tick.
    pub campaigns: Vec<Campaign>,
}

impl ChaosPlan {
    /// No chaos — every query returns nothing.
    #[must_use]
    pub fn none() -> Self {
        ChaosPlan { campaigns: Vec::new() }
    }

    /// The headline fault profile for a `ticks`-long horizon: a steady
    /// background of independent node crashes (0.15 per node-hour), a
    /// rack/PSU failure taking out 12.5 % of the fleet a third of the
    /// way in, and a cooling failure stepping ambient +12 °C for a
    /// sixth of the horizon starting at the halfway mark — deliberately
    /// overlapping the flash-crowd traffic preset so lost capacity
    /// meets peak demand.
    #[must_use]
    pub fn rack_and_flash(ticks: u64) -> Self {
        ChaosPlan {
            campaigns: vec![
                Campaign::NodeCrashes {
                    rate_per_node_hour: 0.15,
                    from_tick: 0,
                    until_tick: u64::MAX,
                },
                Campaign::RackFailure { at_tick: ticks / 3, blast_fraction: 0.125 },
                Campaign::CoolingFailure {
                    at_tick: ticks / 2,
                    duration_ticks: ticks / 6,
                    ambient_delta_c: 12.0,
                },
            ],
        }
    }

    /// The node indices this plan crashes at `tick`, sorted and
    /// deduplicated. Pure in `(seed, tick)` — the caller may query any
    /// tick in any order.
    ///
    /// # Panics
    ///
    /// Panics if a rack failure's blast fraction is outside `(0, 1]` or
    /// a crash campaign's rate is negative.
    #[must_use]
    pub fn crash_indices_at(
        &self,
        seed: u64,
        tick: u64,
        tick_secs: f64,
        nodes: u32,
    ) -> Vec<u32> {
        let mut hit = Vec::new();
        for campaign in &self.campaigns {
            match *campaign {
                Campaign::NodeCrashes { rate_per_node_hour, from_tick, until_tick } => {
                    assert!(rate_per_node_hour >= 0.0, "crash rate must be non-negative");
                    if tick < from_tick || tick >= until_tick {
                        continue;
                    }
                    let p = (rate_per_node_hour / 3600.0 * tick_secs).min(1.0);
                    for node in 0..nodes {
                        let word = splitmix64(
                            seed ^ salt::CHAOS
                                ^ u64::from(node).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                ^ tick.wrapping_mul(0xBF58_476D_1CE4_E5B9),
                        );
                        if unit_fraction(word) < p {
                            hit.push(node);
                        }
                    }
                }
                Campaign::RackFailure { at_tick, blast_fraction } => {
                    assert!(
                        blast_fraction > 0.0 && blast_fraction <= 1.0,
                        "blast fraction must be in (0, 1], got {blast_fraction}"
                    );
                    if tick != at_tick {
                        continue;
                    }
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let width =
                        ((f64::from(nodes) * blast_fraction).round() as u32).clamp(1, nodes);
                    let span = u64::from(nodes - width) + 1;
                    let word = splitmix64(seed ^ salt::CHAOS_RACK ^ at_tick);
                    #[allow(clippy::cast_possible_truncation)]
                    let start = (word % span) as u32;
                    hit.extend(start..start + width);
                }
                Campaign::CoolingFailure { .. } => {}
            }
        }
        hit.sort_unstable();
        hit.dedup();
        hit
    }

    /// The ambient step (°C above the deployment baseline) in force at
    /// `tick` — overlapping cooling failures stack.
    #[must_use]
    pub fn ambient_delta_at(&self, tick: u64) -> f64 {
        self.campaigns
            .iter()
            .map(|c| match *c {
                Campaign::CoolingFailure { at_tick, duration_ticks, ambient_delta_c }
                    if tick >= at_tick && tick < at_tick.saturating_add(duration_ticks) =>
                {
                    ambient_delta_c
                }
                _ => 0.0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_quiet() {
        let plan = ChaosPlan::none();
        for tick in 0..100 {
            assert!(plan.crash_indices_at(1, tick, 5.0, 64).is_empty());
            assert_eq!(plan.ambient_delta_at(tick), 0.0);
        }
    }

    #[test]
    fn crash_draws_are_pure_sorted_and_rate_shaped() {
        let plan = ChaosPlan {
            campaigns: vec![Campaign::NodeCrashes {
                rate_per_node_hour: 2.0,
                from_tick: 10,
                until_tick: 500,
            }],
        };
        let mut total = 0usize;
        for tick in 0..500u64 {
            let a = plan.crash_indices_at(42, tick, 5.0, 256);
            let b = plan.crash_indices_at(42, tick, 5.0, 256);
            assert_eq!(a, b, "draws must be pure in (seed, tick)");
            assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            assert!(tick >= 10 || a.is_empty(), "window not open yet");
            total += a.len();
        }
        // 256 nodes x 490 ticks x (2/3600 x 5) ≈ 348 expected crashes.
        assert!((200..520).contains(&total), "rate shaping is off: {total} crashes");
        let schedule = |seed: u64| -> Vec<Vec<u32>> {
            (0..500).map(|t| plan.crash_indices_at(seed, t, 5.0, 256)).collect()
        };
        assert_ne!(schedule(42), schedule(43), "seeds must decorrelate campaigns");
    }

    #[test]
    fn rack_failure_is_one_contiguous_block_once() {
        let plan = ChaosPlan {
            campaigns: vec![Campaign::RackFailure { at_tick: 240, blast_fraction: 0.125 }],
        };
        for tick in 0..720u64 {
            let hit = plan.crash_indices_at(7, tick, 5.0, 256);
            if tick == 240 {
                assert_eq!(hit.len(), 32, "12.5 % of 256 nodes");
                assert!(
                    hit.windows(2).all(|w| w[1] == w[0] + 1),
                    "blast radius is contiguous: {hit:?}"
                );
                assert!(*hit.last().unwrap() < 256, "blast stays inside the fleet");
            } else {
                assert!(hit.is_empty(), "the PSU dies exactly once");
            }
        }
        // Tiny fleets still lose at least one node.
        let small = plan.crash_indices_at(7, 240, 5.0, 4);
        assert_eq!(small.len(), 1);
    }

    #[test]
    fn cooling_failure_steps_ambient_for_its_window() {
        let plan = ChaosPlan {
            campaigns: vec![Campaign::CoolingFailure {
                at_tick: 100,
                duration_ticks: 50,
                ambient_delta_c: 12.0,
            }],
        };
        assert_eq!(plan.ambient_delta_at(99), 0.0);
        assert_eq!(plan.ambient_delta_at(100), 12.0);
        assert_eq!(plan.ambient_delta_at(149), 12.0);
        assert_eq!(plan.ambient_delta_at(150), 0.0);
        assert!(plan.crash_indices_at(1, 100, 5.0, 64).is_empty(), "heat is not a crash");
    }

    #[test]
    fn campaigns_compose() {
        let plan = ChaosPlan::rack_and_flash(720);
        let rack_tick = 240u64;
        let hit = plan.crash_indices_at(9, rack_tick, 5.0, 256);
        assert!(hit.len() >= 32, "rack blast plus background crashes");
        assert!(hit.windows(2).all(|w| w[0] < w[1]), "merged draws stay sorted/deduped");
        assert_eq!(plan.ambient_delta_at(360), 12.0, "cooling fails at the halfway mark");
        let crashes_somewhere: usize =
            (0..720).map(|t| plan.crash_indices_at(9, t, 5.0, 256).len()).sum();
        assert!(crashes_somewhere > 32, "background campaign fires too");
    }
}
