//! QEMU-style SDC fault injection into hypervisor objects (paper §6.C).
//!
//! "For each statically allocated object of the Hypervisor (total 16820
//! objects), we introduced, in independent executions (total 5
//! executions), Silent Data Corruptions. Afterwards, for each execution
//! we checked whether the data corruption resulted to a non-responsive
//! Hypervisor … In addition, we experimented both with and without VMs
//! running on top of the victim Hypervisor."
//!
//! The campaign flips a real bit in the object's state word, then
//! simulates one hypervisor execution window: the corrupted object may
//! be *exercised* (far more likely under VM load), and an exercised
//! corruption is fatal with the category's criticality. Objects covered
//! by the selective-protection policy are usually repaired by the scrub
//! before the corruption propagates — the ablation knob that §4.A's
//! "educated … selective checkpointing" argument needs.
//!
//! # Examples
//!
//! ```
//! use uniserver_faultinject::{Figure4, SdcCampaign};
//! use uniserver_hypervisor::protect::ProtectionPolicy;
//!
//! let fig4 = SdcCampaign::paper_campaign().run(&ProtectionPolicy::none());
//! // An order of magnitude more crashes with VMs on top.
//! assert!(fig4.total_with_load() > 8 * fig4.total_without_load());
//! ```

pub mod chaos;

pub use chaos::{Campaign, ChaosPlan};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use uniserver_hypervisor::objects::{ObjectCategory, ObjectInventory};
use uniserver_hypervisor::protect::{ProtectionPolicy, Protector};
use uniserver_silicon::rng::bernoulli;
use uniserver_silicon::BitFlip;

/// Outcome of a single injection execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InjectionOutcome {
    /// The corrupted object was never exercised; the SDC stayed latent.
    Latent,
    /// The object was exercised but the corruption was benign.
    Masked,
    /// The protection scrub repaired the object before use.
    Recovered,
    /// The hypervisor became non-responsive (the paper's "crucial"
    /// marking).
    Fatal,
}

/// Load condition of an injection execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadCondition {
    /// VMs actively running on the victim hypervisor.
    WithVms,
    /// Unloaded hypervisor.
    WithoutVms,
}

impl LoadCondition {
    fn exercise_rate(self, cat: ObjectCategory) -> f64 {
        match self {
            LoadCondition::WithVms => cat.exercise_rate_loaded(),
            LoadCondition::WithoutVms => cat.exercise_rate_unloaded(),
        }
    }
}

/// Per-category aggregate of a campaign (one Figure 4 bar pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryResult {
    /// Object category.
    pub category: ObjectCategory,
    /// Injections performed per load condition.
    pub injections: u64,
    /// Fatal failures with VMs running (left axis of Figure 4).
    pub fatal_with_load: u64,
    /// Fatal failures without load (right axis of Figure 4).
    pub fatal_without_load: u64,
    /// Corruptions repaired by selective protection (with load).
    pub recovered_with_load: u64,
}

/// The regenerated Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure4 {
    /// One row per category, in the figure's x-axis order.
    pub rows: Vec<CategoryResult>,
}

impl Figure4 {
    /// Total fatal failures with VM load.
    #[must_use]
    pub fn total_with_load(&self) -> u64 {
        self.rows.iter().map(|r| r.fatal_with_load).sum()
    }

    /// Total fatal failures without load.
    #[must_use]
    pub fn total_without_load(&self) -> u64 {
        self.rows.iter().map(|r| r.fatal_without_load).sum()
    }

    /// Categories ordered by descending loaded fatality — the
    /// sensitivity ranking the paper highlights.
    #[must_use]
    pub fn sensitivity_ranking(&self) -> Vec<ObjectCategory> {
        let mut rows = self.rows.clone();
        rows.sort_by_key(|r| std::cmp::Reverse(r.fatal_with_load));
        rows.into_iter().map(|r| r.category).collect()
    }

    /// Row lookup by category.
    ///
    /// # Panics
    ///
    /// Panics if the category is missing (cannot happen for campaign
    /// outputs).
    #[must_use]
    pub fn row(&self, cat: ObjectCategory) -> &CategoryResult {
        self.rows.iter().find(|r| r.category == cat).expect("all categories present")
    }
}

/// The SDC campaign configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdcCampaign {
    /// Independent executions per object (the paper's 5).
    pub executions_per_object: usize,
    /// Probability that the scrub fires between corruption and exercise
    /// for a protected object.
    pub scrub_coverage_pct: u8,
    /// RNG seed.
    pub seed: u64,
}

impl SdcCampaign {
    /// The paper's campaign: 16 820 objects × 5 executions × 2 load
    /// conditions.
    #[must_use]
    pub fn paper_campaign() -> Self {
        SdcCampaign { executions_per_object: 5, scrub_coverage_pct: 95, seed: 0x51DC }
    }

    /// Runs the campaign under both load conditions.
    ///
    /// # Panics
    ///
    /// Panics if `executions_per_object` is zero.
    #[must_use]
    pub fn run(&self, protection: &ProtectionPolicy) -> Figure4 {
        assert!(self.executions_per_object > 0, "need at least one execution per object");
        let mut inventory = ObjectInventory::build(self.seed);
        let mut protector = Protector::new(protection.clone(), &inventory);
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut rows: Vec<CategoryResult> = ObjectCategory::ALL
            .iter()
            .map(|&category| CategoryResult {
                category,
                injections: 0,
                fatal_with_load: 0,
                fatal_without_load: 0,
                recovered_with_load: 0,
            })
            .collect();

        for condition in [LoadCondition::WithVms, LoadCondition::WithoutVms] {
            for id in 0..inventory.len() as u32 {
                for _ in 0..self.executions_per_object {
                    let outcome =
                        self.inject_once(&mut inventory, &mut protector, id, condition, &mut rng);
                    let cat = inventory.get(id).expect("id in range").category;
                    let row = rows
                        .iter_mut()
                        .find(|r| r.category == cat)
                        .expect("all categories present");
                    if condition == LoadCondition::WithVms {
                        row.injections += 1;
                    }
                    match (outcome, condition) {
                        (InjectionOutcome::Fatal, LoadCondition::WithVms) => {
                            row.fatal_with_load += 1;
                        }
                        (InjectionOutcome::Fatal, LoadCondition::WithoutVms) => {
                            row.fatal_without_load += 1;
                        }
                        (InjectionOutcome::Recovered, LoadCondition::WithVms) => {
                            row.recovered_with_load += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
        Figure4 { rows }
    }

    /// One injection execution: corrupt, maybe scrub, maybe exercise,
    /// classify, repair.
    fn inject_once(
        &self,
        inventory: &mut ObjectInventory,
        protector: &mut Protector,
        id: u32,
        condition: LoadCondition,
        rng: &mut StdRng,
    ) -> InjectionOutcome {
        let (category, protected) = {
            let obj = inventory.get(id).expect("id in range");
            (obj.category, protector.policy().covers(obj.category))
        };

        // The SDC: a real bit flip in the object's state word.
        let flip = BitFlip::random(rng);
        {
            let obj = inventory.get_mut(id).expect("id in range");
            obj.value = flip.apply(obj.value);
            debug_assert!(obj.is_corrupted());
        }

        // Selective protection: the periodic scrub usually runs before
        // the corrupted object is next exercised.
        if protected && bernoulli(rng, f64::from(self.scrub_coverage_pct) / 100.0) {
            protector.scrub(inventory);
            return InjectionOutcome::Recovered;
        }

        let exercised = bernoulli(rng, condition.exercise_rate(category));
        let outcome = if !exercised {
            InjectionOutcome::Latent
        } else if bernoulli(rng, category.criticality()) {
            InjectionOutcome::Fatal
        } else {
            InjectionOutcome::Masked
        };

        // Independent executions: restore the pristine image.
        inventory.get_mut(id).expect("id in range").repair();
        outcome
    }
}

impl Default for SdcCampaign {
    fn default() -> Self {
        SdcCampaign::paper_campaign()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4_unprotected() -> Figure4 {
        SdcCampaign::paper_campaign().run(&ProtectionPolicy::none())
    }

    #[test]
    fn injection_counts_match_the_paper() {
        let fig4 = fig4_unprotected();
        let total: u64 = fig4.rows.iter().map(|r| r.injections).sum();
        assert_eq!(total, 16_820 * 5, "16 820 objects x 5 executions per condition");
    }

    #[test]
    fn load_gap_is_an_order_of_magnitude() {
        let fig4 = fig4_unprotected();
        let ratio = fig4.total_with_load() as f64 / fig4.total_without_load().max(1) as f64;
        assert!((8.0..25.0).contains(&ratio), "load ratio {ratio}");
    }

    #[test]
    fn figure4_axis_magnitudes() {
        let fig4 = fig4_unprotected();
        let fs = fig4.row(ObjectCategory::Fs);
        // Left axis: the worst category reaches ~3 500 with load.
        assert!(
            (3_100..3_900).contains(&(fs.fatal_with_load as i64)),
            "fs loaded fatalities {}",
            fs.fatal_with_load
        );
        // Right axis: everything fits under ~250 plus sampling noise
        // without load.
        for r in &fig4.rows {
            assert!(r.fatal_without_load <= 320, "{}: {}", r.category, r.fatal_without_load);
        }
    }

    #[test]
    fn sensitive_clusters_are_fs_kernel_net_under_both_loads() {
        let fig4 = fig4_unprotected();
        let loaded = fig4.sensitivity_ranking();
        let mut unloaded = fig4.rows.clone();
        unloaded.sort_by_key(|r| std::cmp::Reverse(r.fatal_without_load));
        let top3_loaded: Vec<&str> = loaded[..3].iter().map(|c| c.label()).collect();
        let top3_unloaded: Vec<&str> =
            unloaded[..3].iter().map(|r| r.category.label()).collect();
        for name in ["fs", "kernel", "net"] {
            assert!(top3_loaded.contains(&name), "{name} missing from loaded top-3");
            assert!(top3_unloaded.contains(&name), "{name} missing from unloaded top-3");
        }
    }

    #[test]
    fn selective_protection_suppresses_protected_categories() {
        let unprotected = fig4_unprotected();
        let protected = SdcCampaign::paper_campaign().run(&ProtectionPolicy::top_categories(3));
        for cat in [ObjectCategory::Fs, ObjectCategory::Kernel, ObjectCategory::Net] {
            let before = unprotected.row(cat).fatal_with_load;
            let after = protected.row(cat).fatal_with_load;
            assert!(
                (after as f64) < 0.15 * before as f64,
                "{cat}: protection left {after} of {before} fatalities"
            );
            assert!(protected.row(cat).recovered_with_load > 0);
        }
        // Unprotected categories are untouched in expectation.
        let before = unprotected.row(ObjectCategory::Drivers).fatal_with_load as f64;
        let after = protected.row(ObjectCategory::Drivers).fatal_with_load as f64;
        assert!((after - before).abs() < 0.25 * before, "drivers moved {before} -> {after}");
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = SdcCampaign::paper_campaign().run(&ProtectionPolicy::none());
        let b = SdcCampaign::paper_campaign().run(&ProtectionPolicy::none());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one execution")]
    fn zero_executions_panics() {
        let c = SdcCampaign { executions_per_object: 0, ..SdcCampaign::paper_campaign() };
        let _ = c.run(&ProtectionPolicy::none());
    }
}
