//! The Table 3 energy-efficiency factor stack.
//!
//! The paper's sources of improvement for 2019-era UniServer over an
//! ARM-based server platform: "(i) technology scaling and leakage
//! reduction due to finfet adoption, (ii) software maturity for ARM
//! based servers, (iii) improved efficiency from running in the Edge,
//! and (iv) operating at EOP using the UniServer approach."
//!
//! Extraction note (see `DESIGN.md`): the PDF's table row reads
//! `1.15 | 4 | 2 | 3 | 1.5 | 36`. The body text fixes two anchors — the
//! energy-only TCO improvement is **1.15×** and the overall EE product
//! is **36×** (= 4 × 2 × 3 × 1.5) — so 1.15 is the TCO column and the
//! four EE factors are {4, 2, 3, 1.5} with `margins = 1.5` (the EOP
//! factor, consistent with reclaiming the Table 1 guard-bands). The
//! assignment between `sw_maturity` and `fog` of {2, 3} is ambiguous in
//! the extraction; the product — the table's headline — is invariant,
//! and [`EeFactors::table3_swapped`] exposes the other reading.

use serde::{Deserialize, Serialize};

/// The four multiplicative energy-efficiency factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EeFactors {
    /// Technology scaling + FinFET leakage reduction.
    pub scaling: f64,
    /// ARM server software maturity.
    pub sw_maturity: f64,
    /// Running at the Edge ("fog").
    pub fog: f64,
    /// Operating at EOP — the UniServer margin reclamation.
    pub margins: f64,
}

impl EeFactors {
    /// Table 3's factors under the primary reading.
    #[must_use]
    pub fn table3() -> Self {
        EeFactors { scaling: 4.0, sw_maturity: 2.0, fog: 3.0, margins: 1.5 }
    }

    /// The alternative reading with `sw_maturity` and `fog` swapped
    /// (same overall product).
    #[must_use]
    pub fn table3_swapped() -> Self {
        EeFactors { scaling: 4.0, sw_maturity: 3.0, fog: 2.0, margins: 1.5 }
    }

    /// The factors *without* UniServer (no margin reclamation): what a
    /// conventional 2019 platform would reach.
    #[must_use]
    pub fn without_uniserver(self) -> Self {
        EeFactors { margins: 1.0, ..self }
    }

    /// Overall energy-efficiency improvement (the product).
    #[must_use]
    pub fn overall(self) -> f64 {
        self.scaling * self.sw_maturity * self.fog * self.margins
    }

    /// Table rows for rendering: (source, factor).
    #[must_use]
    pub fn rows(self) -> [(&'static str, f64); 5] {
        [
            ("Scaling", self.scaling),
            ("Sw maturity", self.sw_maturity),
            ("Fog", self.fog),
            ("Margins", self.margins),
            ("Overall", self.overall()),
        ]
    }
}

/// The paper's quoted energy-only TCO improvement.
pub const PAPER_TCO_IMPROVEMENT: f64 = 1.15;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overall_is_36x() {
        assert_eq!(EeFactors::table3().overall(), 36.0);
        assert_eq!(EeFactors::table3_swapped().overall(), 36.0);
    }

    #[test]
    fn uniserver_contributes_its_margin_factor() {
        let with = EeFactors::table3();
        let without = with.without_uniserver();
        assert_eq!(with.overall() / without.overall(), 1.5);
    }

    #[test]
    fn rows_cover_table3() {
        let rows = EeFactors::table3().rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[4], ("Overall", 36.0));
    }
}
