//! Total-cost-of-ownership tool (paper §2.vii, §6.D, Table 3; after
//! Hardy et al.'s analytical TCO framework [31]).
//!
//! * [`factors`] — the energy-efficiency improvement stack of Table 3
//!   (scaling × software maturity × fog × margins = 36×) and the 1.15×
//!   energy-only TCO improvement;
//! * [`model`] — the capex/opex TCO model itself;
//! * [`yield_model`] — chip-cost effects of reclaiming binned-out parts
//!   ("the actual TCO improvement will be even more because of lower
//!   chip cost due to higher yield");
//! * [`explore`] — design-space sweeps over deployment parameters.
//!
//! # Examples
//!
//! ```
//! use uniserver_tco::factors::EeFactors;
//!
//! let table3 = EeFactors::table3();
//! assert_eq!(table3.overall(), 36.0);
//! ```

pub mod explore;
pub mod factors;
pub mod model;
pub mod yield_model;

pub use factors::EeFactors;
pub use model::{TcoBreakdown, TcoParams};
