//! The capex/opex TCO model (after Hardy et al. [31]).
//!
//! TCO over the deployment horizon = server capex + infrastructure
//! capex (provisioned per kW) + energy opex (server power × PUE ×
//! price) + maintenance opex. Calibrated so that energy accounts for
//! ~13 % of baseline TCO — the share at which the paper's overall 36×
//! energy-efficiency gain yields its quoted 1.15× TCO improvement.

use serde::{Deserialize, Serialize};

/// Deployment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoParams {
    /// Number of servers.
    pub servers: u32,
    /// Price per server (chip + board + enclosure), USD.
    pub server_price: f64,
    /// Average power draw per server, watts.
    pub server_power_w: f64,
    /// Power usage effectiveness of the facility.
    pub pue: f64,
    /// Electricity price, USD per kWh.
    pub energy_price_kwh: f64,
    /// Infrastructure capex per provisioned kW (power + cooling), USD.
    pub infra_per_kw: f64,
    /// Yearly maintenance as a fraction of server capex.
    pub maintenance_frac: f64,
    /// Deployment horizon in years.
    pub years: f64,
}

impl TcoParams {
    /// A 2016-era micro-server cloud rack (the paper's baseline class).
    #[must_use]
    pub fn cloud_microserver_rack() -> Self {
        TcoParams {
            servers: 96,
            server_price: 2_000.0,
            server_power_w: 85.0,
            pue: 1.5,
            energy_price_kwh: 0.10,
            infra_per_kw: 2_800.0,
            maintenance_frac: 0.05,
            years: 4.0,
        }
    }

    /// An Edge deployment: fewer nodes, no purpose-built facility
    /// (higher effective energy price, minimal infra capex, free-air
    /// cooling PUE).
    #[must_use]
    pub fn edge_site() -> Self {
        TcoParams {
            servers: 8,
            server_price: 1_800.0,
            server_power_w: 60.0,
            pue: 1.15,
            energy_price_kwh: 0.14,
            infra_per_kw: 600.0,
            maintenance_frac: 0.07,
            years: 4.0,
        }
    }
}

/// A TCO breakdown in USD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoBreakdown {
    /// Server acquisition cost.
    pub server_capex: f64,
    /// Facility power/cooling provisioning cost.
    pub infra_capex: f64,
    /// Energy bill over the horizon.
    pub energy_opex: f64,
    /// Maintenance over the horizon.
    pub maintenance_opex: f64,
}

impl TcoBreakdown {
    /// Computes the breakdown for a deployment.
    #[must_use]
    pub fn compute(p: &TcoParams) -> Self {
        let servers = f64::from(p.servers);
        let server_capex = servers * p.server_price;
        let provisioned_kw = servers * p.server_power_w * p.pue / 1_000.0;
        let infra_capex = provisioned_kw * p.infra_per_kw;
        let kwh = servers * p.server_power_w * p.pue * 24.0 * 365.0 * p.years / 1_000.0;
        let energy_opex = kwh * p.energy_price_kwh;
        let maintenance_opex = server_capex * p.maintenance_frac * p.years;
        TcoBreakdown { server_capex, infra_capex, energy_opex, maintenance_opex }
    }

    /// Total cost of ownership.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.server_capex + self.infra_capex + self.energy_opex + self.maintenance_opex
    }

    /// Energy's share of the total.
    #[must_use]
    pub fn energy_share(&self) -> f64 {
        self.energy_opex / self.total()
    }
}

/// TCO improvement from an energy-efficiency gain alone: power (and the
/// energy bill) divides by `ee_gain`; everything else is unchanged.
/// This is the paper's "taking in account only the energy efficiency
/// gains we estimate 1.15x TCO improvement" calculation.
///
/// # Panics
///
/// Panics if `ee_gain < 1`.
#[must_use]
pub fn tco_improvement_energy_only(p: &TcoParams, ee_gain: f64) -> f64 {
    assert!(ee_gain >= 1.0, "efficiency gain must be at least 1, got {ee_gain}");
    let base = TcoBreakdown::compute(p);
    let improved = TcoParams { server_power_w: p.server_power_w / ee_gain, ..*p };
    // Infrastructure stays provisioned for the original load (it was
    // already built); only the bill shrinks.
    let improved_energy = TcoBreakdown::compute(&improved).energy_opex;
    let improved_total =
        base.server_capex + base.infra_capex + improved_energy + base.maintenance_opex;
    base.total() / improved_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::{EeFactors, PAPER_TCO_IMPROVEMENT};

    #[test]
    fn baseline_energy_share_is_around_13_percent() {
        let b = TcoBreakdown::compute(&TcoParams::cloud_microserver_rack());
        let share = b.energy_share();
        assert!((0.10..0.16).contains(&share), "energy share {share}");
    }

    #[test]
    fn table3_ee_gain_yields_the_paper_tco() {
        let improvement = tco_improvement_energy_only(
            &TcoParams::cloud_microserver_rack(),
            EeFactors::table3().overall(),
        );
        assert!(
            (improvement - PAPER_TCO_IMPROVEMENT).abs() < 0.02,
            "TCO improvement {improvement} vs paper {PAPER_TCO_IMPROVEMENT}"
        );
    }

    #[test]
    fn bigger_gains_have_diminishing_tco_returns() {
        let p = TcoParams::cloud_microserver_rack();
        let g2 = tco_improvement_energy_only(&p, 2.0);
        let g36 = tco_improvement_energy_only(&p, 36.0);
        let g1000 = tco_improvement_energy_only(&p, 1000.0);
        assert!(g2 < g36 && g36 < g1000);
        // Even infinite efficiency cannot beat the non-energy floor.
        let b = TcoBreakdown::compute(&p);
        let ceiling = b.total() / (b.total() - b.energy_opex);
        assert!(g1000 < ceiling);
        assert!(ceiling < 1.2, "energy is a minority share, ceiling {ceiling}");
    }

    #[test]
    fn edge_sites_pay_less_infrastructure() {
        let cloud = TcoBreakdown::compute(&TcoParams::cloud_microserver_rack());
        let edge = TcoBreakdown::compute(&TcoParams::edge_site());
        let cloud_infra_share = cloud.infra_capex / cloud.total();
        let edge_infra_share = edge.infra_capex / edge.total();
        assert!(edge_infra_share < cloud_infra_share);
    }

    #[test]
    fn breakdown_components_are_positive_and_sum() {
        let b = TcoBreakdown::compute(&TcoParams::cloud_microserver_rack());
        assert!(b.server_capex > 0.0 && b.infra_capex > 0.0);
        assert!(b.energy_opex > 0.0 && b.maintenance_opex > 0.0);
        let total = b.server_capex + b.infra_capex + b.energy_opex + b.maintenance_opex;
        assert_eq!(b.total(), total);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn degrading_efficiency_panics() {
        let _ = tco_improvement_energy_only(&TcoParams::cloud_microserver_rack(), 0.5);
    }
}
