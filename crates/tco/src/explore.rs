//! Design-space exploration (§2.vii: "a tool … for end-to-end
//! estimation of the TCO and data-center design exploration. Among other
//! parameters, the TCO tool will consider specific requirements and
//! architecture of both the Cloud and the Edge.").

use serde::{Deserialize, Serialize};

use crate::model::{tco_improvement_energy_only, TcoParams};

/// One point of the exploration grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExplorationPoint {
    /// Facility PUE at this point.
    pub pue: f64,
    /// Energy price at this point, USD/kWh.
    pub energy_price_kwh: f64,
    /// Energy-efficiency gain applied.
    pub ee_gain: f64,
    /// Resulting TCO improvement.
    pub tco_improvement: f64,
}

/// Sweeps PUE × energy price × efficiency gain over a base deployment.
///
/// # Panics
///
/// Panics if any sweep axis is empty.
#[must_use]
pub fn sweep(
    base: &TcoParams,
    pues: &[f64],
    prices: &[f64],
    gains: &[f64],
) -> Vec<ExplorationPoint> {
    assert!(
        !pues.is_empty() && !prices.is_empty() && !gains.is_empty(),
        "sweep axes must be non-empty"
    );
    let mut out = Vec::with_capacity(pues.len() * prices.len() * gains.len());
    for &pue in pues {
        for &price in prices {
            for &gain in gains {
                let p = TcoParams { pue, energy_price_kwh: price, ..*base };
                out.push(ExplorationPoint {
                    pue,
                    energy_price_kwh: price,
                    ee_gain: gain,
                    tco_improvement: tco_improvement_energy_only(&p, gain),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_full_cartesian_coverage() {
        let pts = sweep(
            &TcoParams::cloud_microserver_rack(),
            &[1.1, 1.5, 2.0],
            &[0.05, 0.10, 0.20],
            &[1.5, 36.0],
        );
        assert_eq!(pts.len(), 18);
    }

    #[test]
    fn expensive_energy_amplifies_the_uniserver_case() {
        let pts = sweep(
            &TcoParams::cloud_microserver_rack(),
            &[1.5],
            &[0.05, 0.30],
            &[36.0],
        );
        assert!(pts[1].tco_improvement > pts[0].tco_improvement);
    }

    #[test]
    fn inefficient_facilities_benefit_more() {
        let pts = sweep(&TcoParams::cloud_microserver_rack(), &[1.1, 2.5], &[0.10], &[36.0]);
        assert!(pts[1].tco_improvement > pts[0].tco_improvement);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_axis_panics() {
        let _ = sweep(&TcoParams::cloud_microserver_rack(), &[], &[0.1], &[2.0]);
    }
}
