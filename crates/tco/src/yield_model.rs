//! Chip-cost effects of reclaiming binned-out parts.
//!
//! §5.A: "cost per hardware part may be reduced as parts that previously
//! would have been discarded by binning procedure, will be useful with
//! UniServer approach" — because per-part EOP characterization lets
//! *every* functional chip ship at its own capabilities instead of
//! being discarded for missing the lowest bin.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use uniserver_units::Megahertz;

use uniserver_silicon::binning::bin_population;
use uniserver_silicon::variation::VariationParams;

/// Yield comparison between conventional binning and UniServer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YieldComparison {
    /// Sellable fraction under conventional binning.
    pub binned_yield: f64,
    /// Sellable fraction with per-part EOP characterization (every
    /// functional die ships).
    pub uniserver_yield: f64,
    /// Effective cost-per-sellable-chip ratio (binned / UniServer).
    pub chip_cost_ratio: f64,
}

/// Simulates a chip population and compares yields.
///
/// `functional_fraction` accounts for hard defects that no amount of
/// margin tuning recovers (those dies are dead either way).
///
/// # Panics
///
/// Panics if `population` is zero or `functional_fraction` outside
/// `(0, 1]`.
#[must_use]
pub fn compare_yields(
    population: usize,
    lowest_bin: Megahertz,
    nominal: Megahertz,
    functional_fraction: f64,
    seed: u64,
) -> YieldComparison {
    assert!(population > 0, "population must be non-empty");
    assert!(
        functional_fraction > 0.0 && functional_fraction <= 1.0,
        "functional fraction must be in (0, 1], got {functional_fraction}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let chips = VariationParams::server_28nm().sample_population(population, 8, 8, &mut rng);
    let report = bin_population(&chips, nominal, Megahertz::new(100.0), lowest_bin);

    let binned_yield = report.yield_fraction() * functional_fraction;
    // UniServer ships every functional die at its measured EOP.
    let uniserver_yield = functional_fraction;
    YieldComparison {
        binned_yield,
        uniserver_yield,
        chip_cost_ratio: uniserver_yield / binned_yield,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniserver_reclaims_the_binning_losses() {
        let cmp = compare_yields(
            4_000,
            Megahertz::from_ghz(2.4),
            Megahertz::from_ghz(2.4),
            0.9,
            7,
        );
        assert!(cmp.binned_yield < cmp.uniserver_yield);
        assert!(cmp.chip_cost_ratio > 1.0);
        // With the lowest bin at nominal, roughly half the distribution
        // is below it — a substantial reclaim.
        assert!(cmp.chip_cost_ratio > 1.3, "cost ratio {}", cmp.chip_cost_ratio);
    }

    #[test]
    fn lenient_binning_narrows_the_gap() {
        let strict = compare_yields(4_000, Megahertz::from_ghz(2.4), Megahertz::from_ghz(2.4), 0.9, 7);
        let lenient = compare_yields(4_000, Megahertz::from_ghz(2.0), Megahertz::from_ghz(2.4), 0.9, 7);
        assert!(lenient.chip_cost_ratio < strict.chip_cost_ratio);
    }

    #[test]
    fn hard_defects_cap_both_approaches() {
        let cmp = compare_yields(2_000, Megahertz::from_ghz(2.0), Megahertz::from_ghz(2.4), 0.5, 7);
        assert!(cmp.uniserver_yield <= 0.5);
        assert!(cmp.binned_yield <= 0.5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_population_panics() {
        let _ = compare_yields(0, Megahertz::from_ghz(2.0), Megahertz::from_ghz(2.4), 0.9, 7);
    }
}
