//! The StressLog daemon (paper §3.D).
//!
//! "A mechanism is needed to produce new nominal values that will still
//! guarantee the safe operations of the server. This mechanism will
//! stress test the machine using predefined applications and compute new
//! safe operating V-F-R margins." The daemon:
//!
//! * is **spawned periodically** (every 2–3 months) or **triggered** by
//!   higher layers on anomalous behaviour ([`Schedule`]);
//! * takes the machine offline, receives its **stress target
//!   parameters** ([`StressTargetParams`]) and runs the characterization
//!   campaigns (undervolting shmoo + refresh sweep) with the HealthLog
//!   recording in parallel;
//! * wraps the results into a **margin vector** ([`MarginVector`]) for
//!   the hypervisor and cloud layers.
//!
//! # Examples
//!
//! ```
//! use uniserver_platform::{PartSpec, ServerNode};
//! use uniserver_stresslog::{StressLog, StressTargetParams};
//!
//! let mut node = ServerNode::new(PartSpec::arm_microserver(), 11);
//! let mut daemon = StressLog::new(StressTargetParams::quick());
//! let margins = daemon.characterize(&mut node, None);
//! assert_eq!(margins.per_core_safe_offset_mv.len(), 8);
//! assert!(margins.safe_refresh.as_secs() >= 1.0);
//! ```

use serde::{Deserialize, Serialize};
use uniserver_units::Seconds;

use uniserver_healthlog::SharedHealthLog;
use uniserver_platform::node::ServerNode;
use uniserver_platform::workload::WorkloadProfile;
use uniserver_silicon::rng::splitmix64;
use uniserver_stress::campaign::{RefreshSweep, ShmooCampaign, Table2Summary};
use uniserver_stress::kernels;

/// Input parameters handed down by higher layers ("as soon as the
/// monitor receives the input stress target parameters from the higher
/// system layers, it will initiate the stress test scenarios").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StressTargetParams {
    /// Workload suite: benchmarks representing real applications plus
    /// hand-coded component stressors.
    pub workloads: Vec<WorkloadProfile>,
    /// Undervolting shmoo methodology.
    pub shmoo: ShmooCampaign,
    /// Refresh-relaxation sweep methodology.
    pub refresh: RefreshSweep,
    /// Safety slack subtracted from measured crash offsets (millivolts).
    pub voltage_slack_mv: f64,
    /// Multiplier (≤ 1) applied to the measured safe refresh interval.
    pub refresh_derating: f64,
}

impl StressTargetParams {
    /// The full suite: the SPEC subset plus every hand-coded kernel, at
    /// the paper's methodology settings.
    #[must_use]
    pub fn standard() -> Self {
        let mut workloads = WorkloadProfile::spec2006_subset();
        workloads.extend(kernels::suite());
        StressTargetParams {
            workloads,
            shmoo: ShmooCampaign::paper_methodology(),
            refresh: RefreshSweep::paper_sweep(),
            voltage_slack_mv: 15.0,
            refresh_derating: 0.8,
        }
    }

    /// A reduced suite for tests and doc examples.
    #[must_use]
    pub fn quick() -> Self {
        let mut p = StressTargetParams::standard();
        p.workloads = vec![WorkloadProfile::spec_bzip2(), kernels::droop_resonator()];
        p.shmoo.dwell = Seconds::from_millis(200.0);
        p.shmoo.runs = 1;
        p.refresh.passes = 1;
        p
    }
}

impl Default for StressTargetParams {
    fn default() -> Self {
        StressTargetParams::standard()
    }
}

/// The output vector "containing the new safe system V-F-R margins that
/// will be suggested to the software (i.e. Hypervisor) for future
/// usage" (§2.ii).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarginVector {
    /// Node time at which the characterization finished.
    pub produced_at: Seconds,
    /// Part the margins apply to.
    pub part_name: String,
    /// Maximum safe undervolt per core, in millivolts below nominal
    /// (measured weakest crash point minus the safety slack).
    pub per_core_safe_offset_mv: Vec<f64>,
    /// Safe refresh interval for relaxed memory domains.
    pub safe_refresh: Seconds,
    /// Condensed crash/CE statistics from the shmoo (Table 2 form).
    pub summary: Table2Summary,
}

impl MarginVector {
    /// The node-wide safe offset: limited by the weakest core.
    ///
    /// # Panics
    ///
    /// Panics if the vector covers no cores.
    #[must_use]
    pub fn node_safe_offset_mv(&self) -> f64 {
        assert!(!self.per_core_safe_offset_mv.is_empty(), "empty margin vector");
        self.per_core_safe_offset_mv.iter().cloned().fold(f64::MAX, f64::min)
    }
}

/// Periodic/triggered scheduling of re-characterizations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Period between routine runs (the paper suggests 2–3 months).
    pub period: Seconds,
    /// When the daemon last ran, if ever.
    pub last_run: Option<Seconds>,
}

impl Schedule {
    /// A fresh schedule with the given period that has never run.
    #[must_use]
    pub fn every(period: Seconds) -> Self {
        Schedule { period, last_run: None }
    }

    /// The paper's suggested cadence (~2.5 months).
    #[must_use]
    pub fn paper_cadence() -> Self {
        Schedule::every(Seconds::new(2.5 * 30.0 * 24.0 * 3600.0))
    }

    /// Whether a characterization is due: never ran, period elapsed, or
    /// an anomaly was flagged by the HealthLog.
    #[must_use]
    pub fn due(&self, now: Seconds, anomaly: bool) -> bool {
        if anomaly {
            return true;
        }
        match self.last_run {
            None => true,
            Some(last) => now.saturating_sub(last) >= self.period,
        }
    }

    /// Records a completed run.
    pub fn mark_ran(&mut self, now: Seconds) {
        self.last_run = Some(now);
    }
}

/// The StressLog daemon.
#[derive(Debug, Clone)]
pub struct StressLog {
    params: StressTargetParams,
    history: Vec<MarginVector>,
}

impl StressLog {
    /// Creates a daemon with the given stress target parameters.
    #[must_use]
    pub fn new(params: StressTargetParams) -> Self {
        StressLog { params, history: Vec::new() }
    }

    /// The configured parameters.
    #[must_use]
    pub fn params(&self) -> &StressTargetParams {
        &self.params
    }

    /// All previously produced margin vectors, oldest first.
    #[must_use]
    pub fn history(&self) -> &[MarginVector] {
        &self.history
    }

    /// Takes the node offline and characterizes it. If a HealthLog
    /// handle is supplied, the daemon announces start/finish in the
    /// shared logfile (the paper runs HealthLog in parallel to record
    /// events during stress testing).
    pub fn characterize(
        &mut self,
        node: &mut ServerNode,
        health: Option<&SharedHealthLog>,
    ) -> MarginVector {
        if let Some(h) = health {
            h.lock().unwrap().log_note(format!(
                "stresslog: begin characterization of '{}' at t={:.1}s",
                node.part().name,
                node.now().as_secs()
            ));
        }

        // --- CPU margins via the undervolting shmoo: one pass over the
        // raw runs collecting each core's weakest crash point.
        let shmoo = self.params.shmoo.run_on(node, &self.params.workloads);
        let nominal_mv = node.part().nominal_voltage.as_millivolts();
        let cores = shmoo.cores();
        let mut weakest_mv = vec![f64::MAX; cores.len()];
        for r in &shmoo.runs {
            let pos = cores.binary_search(&r.core).expect("core listed by the shmoo");
            weakest_mv[pos] = weakest_mv[pos].min(r.crash_offset_mv);
        }
        let per_core: Vec<f64> = weakest_mv
            .into_iter()
            .map(|mv| {
                let safe = (mv - self.params.voltage_slack_mv).max(0.0);
                // Never suggest more than the MSR can express.
                safe.min(nominal_mv)
            })
            .collect();

        // --- DRAM margins via the refresh sweep on a relaxed-domain DIMM.
        // The sweep stream derives from the node's own manufacture seed:
        // a per-part constant here would hand every node of a part the
        // identical DRAM draw, collapsing fleet-level refresh diversity.
        let last_dimm = node.memory.dimms().len() - 1;
        let sweep_seed = splitmix64(node.seed() ^ 0x5EED_0D1A_D4A2_7331);
        let points = self.params.refresh.run(&mut node.memory, last_dimm, sweep_seed);
        let measured_safe = RefreshSweep::max_safe_interval(&points)
            .unwrap_or(Seconds::from_millis(64.0));
        let safe_refresh =
            Seconds::new((measured_safe.as_secs() * self.params.refresh_derating).max(0.064));

        let vector = MarginVector {
            produced_at: node.now(),
            part_name: node.part().name.clone(),
            per_core_safe_offset_mv: per_core,
            safe_refresh,
            summary: Table2Summary::from_shmoo(&shmoo),
        };
        if let Some(h) = health {
            h.lock().unwrap().log_note(format!(
                "stresslog: done; node-safe offset {:.0} mV, safe refresh {}",
                vector.node_safe_offset_mv(),
                vector.safe_refresh
            ));
        }
        // The shmoo crashes the node on purpose, core by core, to find
        // the ladder's crash points. Those are measurements, not service
        // failures — drain them so the cluster's crash feed only ever
        // reports production crashes.
        let _ = node.take_crash_events();
        self.history.push(vector.clone());
        vector
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniserver_healthlog::{HealthLog, ThresholdPolicy};
    use uniserver_platform::part::PartSpec;

    fn characterized() -> (ServerNode, MarginVector) {
        let mut node = ServerNode::new(PartSpec::arm_microserver(), 11);
        let mut daemon = StressLog::new(StressTargetParams::quick());
        let margins = daemon.characterize(&mut node, None);
        (node, margins)
    }

    #[test]
    fn margins_cover_every_core_and_are_substantial() {
        let (node, margins) = characterized();
        assert_eq!(margins.per_core_safe_offset_mv.len(), node.core_count());
        for (core, &mv) in margins.per_core_safe_offset_mv.iter().enumerate() {
            // The ARM part's crash offsets sit near 9–13 % of 980 mV; the
            // safe margin after slack must remain far beyond nominal DVFS.
            assert!((25.0..200.0).contains(&mv), "core {core} safe offset {mv} mV");
        }
        assert!(margins.safe_refresh.as_secs() > 0.5, "safe refresh {}", margins.safe_refresh);
    }

    #[test]
    fn characterization_crashes_do_not_reach_the_service_crash_feed() {
        let (mut node, margins) = characterized();
        assert!(
            node.pending_crashes().is_empty(),
            "shmoo crashes are measurements, not service failures"
        );
        // A real in-service crash afterwards still surfaces.
        node.msr.set_voltage_offset_all(margins.node_safe_offset_mv() + 120.0).unwrap();
        let w = WorkloadProfile::spec_zeusmp();
        while node.run_interval(&w, Seconds::from_millis(100.0)).crash.is_none() {}
        assert_eq!(node.pending_crashes().len(), 1);
    }

    #[test]
    fn margin_vector_is_actually_safe_to_operate_at() {
        let (mut node, margins) = characterized();
        // Apply the advertised node-wide safe offset and run for a while:
        // the whole point of the margin vector is that this must not crash.
        node.msr.set_voltage_offset_all(margins.node_safe_offset_mv()).unwrap();
        let w = WorkloadProfile::spec_bzip2();
        for _ in 0..100 {
            let report = node.run_interval(&w, Seconds::from_millis(200.0));
            assert!(report.crash.is_none(), "crashed at the advertised safe offset");
        }
    }

    #[test]
    fn slack_widens_safety() {
        let mut node_a = ServerNode::new(PartSpec::arm_microserver(), 11);
        let mut node_b = ServerNode::new(PartSpec::arm_microserver(), 11);
        let mut tight = StressLog::new(StressTargetParams {
            voltage_slack_mv: 5.0,
            ..StressTargetParams::quick()
        });
        let mut wide = StressLog::new(StressTargetParams {
            voltage_slack_mv: 25.0,
            ..StressTargetParams::quick()
        });
        let a = tight.characterize(&mut node_a, None);
        let b = wide.characterize(&mut node_b, None);
        assert!(b.node_safe_offset_mv() < a.node_safe_offset_mv());
    }

    #[test]
    fn refresh_derating_shrinks_the_interval() {
        let mut node_a = ServerNode::new(PartSpec::arm_microserver(), 13);
        let mut node_b = ServerNode::new(PartSpec::arm_microserver(), 13);
        let mut full = StressLog::new(StressTargetParams {
            refresh_derating: 1.0,
            ..StressTargetParams::quick()
        });
        let mut derated = StressLog::new(StressTargetParams {
            refresh_derating: 0.5,
            ..StressTargetParams::quick()
        });
        let a = full.characterize(&mut node_a, None);
        let b = derated.characterize(&mut node_b, None);
        assert!(b.safe_refresh < a.safe_refresh);
        assert!((b.safe_refresh.as_secs() / a.safe_refresh.as_secs() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn schedule_semantics() {
        let mut s = Schedule::every(Seconds::new(100.0));
        assert!(s.due(Seconds::ZERO, false), "never ran -> due");
        s.mark_ran(Seconds::new(10.0));
        assert!(!s.due(Seconds::new(50.0), false));
        assert!(s.due(Seconds::new(110.0), false), "period elapsed -> due");
        assert!(s.due(Seconds::new(50.0), true), "anomaly -> due regardless");
    }

    #[test]
    fn paper_cadence_is_months() {
        let s = Schedule::paper_cadence();
        let days = s.period.as_secs() / 86_400.0;
        assert!((60.0..100.0).contains(&days), "cadence {days} days");
    }

    #[test]
    fn characterization_is_logged_to_shared_healthlog() {
        let mut node = ServerNode::new(PartSpec::arm_microserver(), 17);
        let health = HealthLog::shared(64, ThresholdPolicy::default());
        let mut daemon = StressLog::new(StressTargetParams::quick());
        let _ = daemon.characterize(&mut node, Some(&health));
        let log = health.lock().unwrap();
        assert_eq!(log.logfile().len(), 2);
        assert!(log.logfile()[0].contains("begin characterization"));
        assert!(log.logfile()[1].contains("safe refresh"));
        assert_eq!(daemon.history().len(), 1);
    }

    #[test]
    fn recharacterization_tracks_aging() {
        // The reason the StressLog re-runs "several times over the
        // lifetime of a server": after years of drift the safe margins
        // shrink, and a fresh characterization discovers that.
        let mut node = ServerNode::new(PartSpec::arm_microserver(), 23);
        let mut daemon = StressLog::new(StressTargetParams::quick());
        let fresh = daemon.characterize(&mut node, None);
        node.age_by_months(48.0);
        let aged = daemon.characterize(&mut node, None);
        assert!(
            aged.node_safe_offset_mv() < fresh.node_safe_offset_mv(),
            "aged margins ({:.0} mV) must be tighter than fresh ({:.0} mV)",
            aged.node_safe_offset_mv(),
            fresh.node_safe_offset_mv()
        );
        // And the drift magnitude is in the NBTI ballpark (tens of mV).
        let delta = fresh.node_safe_offset_mv() - aged.node_safe_offset_mv();
        assert!((5.0..60.0).contains(&delta), "drift delta {delta} mV");
    }

    #[test]
    fn history_accumulates() {
        let mut node = ServerNode::new(PartSpec::arm_microserver(), 19);
        let mut daemon = StressLog::new(StressTargetParams::quick());
        let _ = daemon.characterize(&mut node, None);
        let _ = daemon.characterize(&mut node, None);
        assert_eq!(daemon.history().len(), 2);
        assert!(daemon.history()[1].produced_at > daemon.history()[0].produced_at);
    }
}
