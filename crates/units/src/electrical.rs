//! Electrical quantities: supply voltage.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// A supply voltage in volts.
///
/// Voltages in this workspace are always non-negative supply rails; the
/// constructor panics on negative or non-finite input so that corrupted
/// model state is caught at the point of creation.
///
/// # Examples
///
/// ```
/// use uniserver_units::Volts;
///
/// let nominal = Volts::new(1.365);
/// let offset = nominal - Volts::from_millivolts(150.0);
/// assert!((offset.as_millivolts() - 1215.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Volts(f64);

impl Volts {
    /// The zero voltage.
    pub const ZERO: Volts = Volts(0.0);

    /// Creates a voltage from a value in volts.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative, NaN or infinite.
    #[must_use]
    pub fn new(v: f64) -> Self {
        assert!(v.is_finite() && v >= 0.0, "voltage must be finite and non-negative, got {v}");
        Volts(v)
    }

    /// Creates a voltage from a value in millivolts.
    #[must_use]
    pub fn from_millivolts(mv: f64) -> Self {
        Volts::new(mv / 1000.0)
    }

    /// Returns the value in volts.
    #[must_use]
    pub fn as_volts(self) -> f64 {
        self.0
    }

    /// Returns the value in millivolts.
    #[must_use]
    pub fn as_millivolts(self) -> f64 {
        self.0 * 1000.0
    }

    /// Returns this voltage multiplied by a dimensionless factor.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative or non-finite.
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        Volts::new(self.0 * factor)
    }

    /// Returns the fractional offset of `self` below `reference`.
    ///
    /// A result of `0.10` means `self` is 10 % below `reference`. Negative
    /// results mean `self` is above the reference.
    ///
    /// # Panics
    ///
    /// Panics if `reference` is zero.
    #[must_use]
    pub fn offset_below(self, reference: Volts) -> f64 {
        assert!(reference.0 > 0.0, "reference voltage must be positive");
        (reference.0 - self.0) / reference.0
    }

    /// Saturating subtraction: returns zero volts instead of panicking when
    /// the subtrahend exceeds `self`.
    #[must_use]
    pub fn saturating_sub(self, rhs: Volts) -> Self {
        Volts((self.0 - rhs.0).max(0.0))
    }

    /// Returns the smaller of two voltages.
    #[must_use]
    pub fn min(self, other: Volts) -> Self {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two voltages.
    #[must_use]
    pub fn max(self, other: Volts) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Default for Volts {
    fn default() -> Self {
        Volts::ZERO
    }
}

impl fmt::Display for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 0.1 {
            write!(f, "{:.1} mV", self.as_millivolts())
        } else {
            write!(f, "{:.3} V", self.0)
        }
    }
}

impl Add for Volts {
    type Output = Volts;

    fn add(self, rhs: Volts) -> Volts {
        Volts::new(self.0 + rhs.0)
    }
}

impl Sub for Volts {
    type Output = Volts;

    /// # Panics
    ///
    /// Panics if the result would be negative; use
    /// [`Volts::saturating_sub`] when undershoot is expected.
    fn sub(self, rhs: Volts) -> Volts {
        Volts::new(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        let v = Volts::new(0.844);
        assert_eq!(v.as_volts(), 0.844);
        assert!((v.as_millivolts() - 844.0).abs() < 1e-9);
        assert_eq!(Volts::from_millivolts(844.0), v);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_voltage_panics() {
        let _ = Volts::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_voltage_panics() {
        let _ = Volts::new(f64::NAN);
    }

    #[test]
    fn offset_below_reference() {
        let nominal = Volts::new(1.0);
        let low = Volts::new(0.9);
        assert!((low.offset_below(nominal) - 0.10).abs() < 1e-12);
        assert!(nominal.offset_below(low) < 0.0);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = Volts::new(0.5);
        let b = Volts::new(0.8);
        assert_eq!(a.saturating_sub(b), Volts::ZERO);
        assert_eq!(b.saturating_sub(a), Volts::new(0.30000000000000004));
    }

    #[test]
    fn min_max() {
        let a = Volts::new(0.5);
        let b = Volts::new(0.8);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_switches_units() {
        assert_eq!(Volts::new(1.365).to_string(), "1.365 V");
        assert_eq!(Volts::from_millivolts(15.0).to_string(), "15.0 mV");
    }
}
