//! Time intervals.

use std::fmt;
use std::ops::{Add, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A non-negative time interval in seconds.
///
/// Used for simulation windows, DRAM refresh intervals and latency budgets.
///
/// # Examples
///
/// ```
/// use uniserver_units::Seconds;
///
/// let nominal_refresh = Seconds::from_millis(64.0);
/// let relaxed = nominal_refresh * 78.0; // the paper's extreme point
/// assert!((relaxed.as_secs() - 4.992).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Seconds(f64);

impl Seconds {
    /// The zero-length interval.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates an interval from a value in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN or infinite.
    #[must_use]
    pub fn new(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "interval must be finite and non-negative, got {s}");
        Seconds(s)
    }

    /// Creates an interval from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Seconds::new(ms / 1e3)
    }

    /// Creates an interval from microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Seconds::new(us / 1e6)
    }

    /// Returns the value in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the value in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the value in microseconds.
    #[must_use]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns `self / other`, the dimensionless ratio of two intervals.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    #[must_use]
    pub fn ratio_to(self, other: Seconds) -> f64 {
        assert!(other.0 > 0.0, "cannot take ratio to a zero interval");
        self.0 / other.0
    }

    /// Saturating subtraction clamping at zero.
    #[must_use]
    pub fn saturating_sub(self, rhs: Seconds) -> Self {
        Seconds((self.0 - rhs.0).max(0.0))
    }

    /// Returns the smaller of two intervals.
    #[must_use]
    pub fn min(self, other: Seconds) -> Self {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two intervals.
    #[must_use]
    pub fn max(self, other: Seconds) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Default for Seconds {
    fn default() -> Self {
        Seconds::ZERO
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.2} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.1} ms", self.as_millis())
        } else {
            write!(f, "{:.1} µs", self.as_micros())
        }
    }
}

impl Add for Seconds {
    type Output = Seconds;

    fn add(self, rhs: Seconds) -> Seconds {
        Seconds::new(self.0 + rhs.0)
    }
}

impl Sub for Seconds {
    type Output = Seconds;

    /// # Panics
    ///
    /// Panics if the result would be negative; use
    /// [`Seconds::saturating_sub`] when undershoot is expected.
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;

    /// # Panics
    ///
    /// Panics if the result would be negative or non-finite.
    fn mul(self, rhs: f64) -> Seconds {
        Seconds::new(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let t = Seconds::from_millis(64.0);
        assert!((t.as_secs() - 0.064).abs() < 1e-12);
        assert!((t.as_millis() - 64.0).abs() < 1e-9);
        assert!((Seconds::from_micros(1500.0).as_millis() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn refresh_relaxation_ratio() {
        let nominal = Seconds::from_millis(64.0);
        let relaxed = Seconds::new(5.0);
        assert!((relaxed.ratio_to(nominal) - 78.125).abs() < 1e-9);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Seconds::new(1.5).to_string(), "1.50 s");
        assert_eq!(Seconds::from_millis(64.0).to_string(), "64.0 ms");
        assert_eq!(Seconds::from_micros(12.0).to_string(), "12.0 µs");
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Seconds::new(1.0).saturating_sub(Seconds::new(2.0)), Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_interval_panics() {
        let _ = Seconds::new(-1.0);
    }
}
