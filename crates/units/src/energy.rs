//! Power and energy.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::Seconds;

/// Electrical power in watts.
///
/// # Examples
///
/// ```
/// use uniserver_units::{Watts, Seconds};
///
/// let sustained = Watts::new(30.0);
/// let energy = sustained * Seconds::new(3600.0);
/// assert_eq!(energy.as_watt_hours(), 30.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Watts(f64);

impl Watts {
    /// The zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Creates a power from a value in watts.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative, NaN or infinite.
    #[must_use]
    pub fn new(w: f64) -> Self {
        assert!(w.is_finite() && w >= 0.0, "power must be finite and non-negative, got {w}");
        Watts(w)
    }

    /// Creates a power from milliwatts.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        Watts::new(mw / 1e3)
    }

    /// Returns the value in watts.
    #[must_use]
    pub fn as_watts(self) -> f64 {
        self.0
    }

    /// Returns the value in milliwatts.
    #[must_use]
    pub fn as_milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns this power multiplied by a dimensionless factor.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative or non-finite.
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        Watts::new(self.0 * factor)
    }

    /// Fraction of `self` relative to `total` (e.g. refresh power share).
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    #[must_use]
    pub fn fraction_of(self, total: Watts) -> f64 {
        assert!(total.0 > 0.0, "total power must be positive");
        self.0 / total.0
    }
}

impl Default for Watts {
    fn default() -> Self {
        Watts::ZERO
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1.0 {
            write!(f, "{:.1} mW", self.as_milliwatts())
        } else {
            write!(f, "{:.2} W", self.0)
        }
    }
}

impl Add for Watts {
    type Output = Watts;

    fn add(self, rhs: Watts) -> Watts {
        Watts::new(self.0 + rhs.0)
    }
}

impl Sub for Watts {
    type Output = Watts;

    /// # Panics
    ///
    /// Panics if the result would be negative.
    fn sub(self, rhs: Watts) -> Watts {
        Watts::new(self.0 - rhs.0)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;

    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.0 * rhs.as_secs())
    }
}

/// Energy in joules.
///
/// Produced by integrating [`Watts`] over [`Seconds`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Joules(f64);

impl Joules {
    /// The zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Creates an energy from a value in joules.
    ///
    /// # Panics
    ///
    /// Panics if `j` is negative, NaN or infinite.
    #[must_use]
    pub fn new(j: f64) -> Self {
        assert!(j.is_finite() && j >= 0.0, "energy must be finite and non-negative, got {j}");
        Joules(j)
    }

    /// Returns the value in joules.
    #[must_use]
    pub fn as_joules(self) -> f64 {
        self.0
    }

    /// Returns the value in watt-hours.
    #[must_use]
    pub fn as_watt_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Returns the value in kilowatt-hours.
    #[must_use]
    pub fn as_kwh(self) -> f64 {
        self.0 / 3.6e6
    }

    /// Returns this energy multiplied by a dimensionless factor.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative or non-finite.
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        Joules::new(self.0 * factor)
    }
}

impl Default for Joules {
    fn default() -> Self {
        Joules::ZERO
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 3.6e6 {
            write!(f, "{:.2} kWh", self.as_kwh())
        } else {
            write!(f, "{:.2} J", self.0)
        }
    }
}

impl Add for Joules {
    type Output = Joules;

    fn add(self, rhs: Joules) -> Joules {
        Joules::new(self.0 + rhs.0)
    }
}

impl Sub for Joules {
    type Output = Joules;

    /// # Panics
    ///
    /// Panics if the result would be negative.
    fn sub(self, rhs: Joules) -> Joules {
        Joules::new(self.0 - rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;

    /// Average power over an interval.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero.
    fn div(self, rhs: Seconds) -> Watts {
        assert!(rhs.as_secs() > 0.0, "cannot average energy over a zero interval");
        Watts::new(self.0 / rhs.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(75.0) * Seconds::new(10.0);
        assert_eq!(e.as_joules(), 750.0);
        assert_eq!(e / Seconds::new(10.0), Watts::new(75.0));
    }

    #[test]
    fn watt_hours() {
        let e = Watts::new(1000.0) * Seconds::new(3600.0);
        assert!((e.as_kwh() - 1.0).abs() < 1e-12);
        assert_eq!(e.to_string(), "1.00 kWh");
    }

    #[test]
    fn fraction_of_total() {
        let refresh = Watts::new(0.9);
        let total = Watts::new(10.0);
        assert!((refresh.fraction_of(total) - 0.09).abs() < 1e-12);
    }

    #[test]
    fn display_small_power() {
        assert_eq!(Watts::from_milliwatts(120.0).to_string(), "120.0 mW");
        assert_eq!(Watts::new(15.0).to_string(), "15.00 W");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_panics() {
        let _ = Watts::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "zero interval")]
    fn zero_interval_average_panics() {
        let _ = Joules::new(1.0) / Seconds::ZERO;
    }
}
