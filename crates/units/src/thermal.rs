//! Temperature.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// A temperature in degrees Celsius.
///
/// Unlike the other quantities, temperatures may be negative (cold aisles
/// exist), but are bounded to a physically plausible range for silicon.
///
/// # Examples
///
/// ```
/// use uniserver_units::Celsius;
///
/// let ambient = Celsius::new(25.0);
/// let hot = ambient + Celsius::new(40.0);
/// assert_eq!(hot.as_celsius(), 65.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Celsius(f64);

impl Celsius {
    /// Lowest representable temperature (liquid-nitrogen territory).
    pub const MIN: Celsius = Celsius(-200.0);
    /// Highest representable temperature (beyond any junction limit).
    pub const MAX: Celsius = Celsius(300.0);

    /// Creates a temperature in °C.
    ///
    /// # Panics
    ///
    /// Panics if `c` is NaN/infinite or outside [`Celsius::MIN`],
    /// [`Celsius::MAX`].
    #[must_use]
    pub fn new(c: f64) -> Self {
        assert!(
            c.is_finite() && (Self::MIN.0..=Self::MAX.0).contains(&c),
            "temperature must be finite and within [-200, 300] °C, got {c}"
        );
        Celsius(c)
    }

    /// Returns the value in °C.
    #[must_use]
    pub fn as_celsius(self) -> f64 {
        self.0
    }

    /// Returns the value in kelvin.
    #[must_use]
    pub fn as_kelvin(self) -> f64 {
        self.0 + 273.15
    }

    /// Degrees of `self` above `reference`; negative when below.
    #[must_use]
    pub fn delta_above(self, reference: Celsius) -> f64 {
        self.0 - reference.0
    }

    /// Clamps into `[lo, hi]`.
    #[must_use]
    pub fn clamp(self, lo: Celsius, hi: Celsius) -> Celsius {
        Celsius(self.0.clamp(lo.0, hi.0))
    }
}

impl Default for Celsius {
    /// Room temperature, 25 °C.
    fn default() -> Self {
        Celsius(25.0)
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} °C", self.0)
    }
}

impl Add for Celsius {
    type Output = Celsius;

    /// Adds a temperature *delta* (interpreting the right operand as a
    /// difference in degrees).
    ///
    /// # Panics
    ///
    /// Panics if the result leaves the representable range.
    fn add(self, rhs: Celsius) -> Celsius {
        Celsius::new(self.0 + rhs.0)
    }
}

impl Sub for Celsius {
    type Output = Celsius;

    /// # Panics
    ///
    /// Panics if the result leaves the representable range.
    fn sub(self, rhs: Celsius) -> Celsius {
        Celsius::new(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kelvin_conversion() {
        assert!((Celsius::new(25.0).as_kelvin() - 298.15).abs() < 1e-9);
        assert!((Celsius::new(-40.0).as_kelvin() - 233.15).abs() < 1e-9);
    }

    #[test]
    fn delta_and_clamp() {
        let t = Celsius::new(85.0);
        assert_eq!(t.delta_above(Celsius::new(25.0)), 60.0);
        assert_eq!(t.clamp(Celsius::new(0.0), Celsius::new(70.0)), Celsius::new(70.0));
    }

    #[test]
    fn default_is_room_temperature() {
        assert_eq!(Celsius::default(), Celsius::new(25.0));
    }

    #[test]
    #[should_panic(expected = "within")]
    fn out_of_range_panics() {
        let _ = Celsius::new(400.0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Celsius::new(65.25).to_string(), "65.2 °C");
    }
}
