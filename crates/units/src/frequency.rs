//! Clock frequency.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// A clock frequency in megahertz.
///
/// # Examples
///
/// ```
/// use uniserver_units::Megahertz;
///
/// let f = Megahertz::from_ghz(4.0);
/// assert_eq!(f.as_mhz(), 4000.0);
/// assert_eq!(f.scaled(0.5).as_ghz(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Megahertz(f64);

impl Megahertz {
    /// Creates a frequency from a value in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is negative, NaN or infinite.
    #[must_use]
    pub fn new(mhz: f64) -> Self {
        assert!(mhz.is_finite() && mhz >= 0.0, "frequency must be finite and non-negative, got {mhz}");
        Megahertz(mhz)
    }

    /// Creates a frequency from a value in GHz.
    #[must_use]
    pub fn from_ghz(ghz: f64) -> Self {
        Megahertz::new(ghz * 1000.0)
    }

    /// Returns the value in MHz.
    #[must_use]
    pub fn as_mhz(self) -> f64 {
        self.0
    }

    /// Returns the value in GHz.
    #[must_use]
    pub fn as_ghz(self) -> f64 {
        self.0 / 1000.0
    }

    /// Returns the value in Hz.
    #[must_use]
    pub fn as_hz(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns this frequency multiplied by a dimensionless factor.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative or non-finite.
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        Megahertz::new(self.0 * factor)
    }

    /// Number of clock cycles elapsed over `seconds` at this frequency.
    #[must_use]
    pub fn cycles_in(self, seconds: crate::Seconds) -> f64 {
        self.as_hz() * seconds.as_secs()
    }
}

impl Default for Megahertz {
    fn default() -> Self {
        Megahertz(0.0)
    }
}

impl fmt::Display for Megahertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000.0 {
            write!(f, "{:.2} GHz", self.as_ghz())
        } else {
            write!(f, "{:.0} MHz", self.0)
        }
    }
}

impl Add for Megahertz {
    type Output = Megahertz;

    fn add(self, rhs: Megahertz) -> Megahertz {
        Megahertz::new(self.0 + rhs.0)
    }
}

impl Sub for Megahertz {
    type Output = Megahertz;

    /// # Panics
    ///
    /// Panics if the result would be negative.
    fn sub(self, rhs: Megahertz) -> Megahertz {
        Megahertz::new(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Seconds;

    #[test]
    fn ghz_conversion() {
        let f = Megahertz::from_ghz(2.6);
        assert!((f.as_mhz() - 2600.0).abs() < 1e-9);
        assert!((f.as_ghz() - 2.6).abs() < 1e-12);
        assert_eq!(f.as_hz(), 2.6e9);
    }

    #[test]
    fn cycles_in_window() {
        let f = Megahertz::from_ghz(1.0);
        assert_eq!(f.cycles_in(Seconds::new(2.0)), 2e9);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Megahertz::new(800.0).to_string(), "800 MHz");
        assert_eq!(Megahertz::from_ghz(4.0).to_string(), "4.00 GHz");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_frequency_panics() {
        let _ = Megahertz::new(-1.0);
    }
}
