//! Dimensionless quantities: ratios, percentages and bit-error rates.

use std::fmt;
use std::ops::Mul;

use serde::{Deserialize, Serialize};

/// A dimensionless ratio, typically in `[0, 1]` but allowed to exceed 1 for
/// improvement factors (e.g. a 36× energy-efficiency gain).
///
/// # Examples
///
/// ```
/// use uniserver_units::Ratio;
///
/// let guardband = Ratio::from_percent(20.0);
/// assert_eq!(guardband.value(), 0.20);
/// let stacked = guardband * Ratio::new(0.5);
/// assert_eq!(stacked.as_percent(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Ratio(f64);

impl Ratio {
    /// The zero ratio.
    pub const ZERO: Ratio = Ratio(0.0);
    /// The unit ratio.
    pub const ONE: Ratio = Ratio(1.0);

    /// Creates a ratio from a raw value.
    ///
    /// # Panics
    ///
    /// Panics if `r` is negative, NaN or infinite.
    #[must_use]
    pub fn new(r: f64) -> Self {
        assert!(r.is_finite() && r >= 0.0, "ratio must be finite and non-negative, got {r}");
        Ratio(r)
    }

    /// Creates a ratio from a percentage (`20.0` → `0.20`).
    #[must_use]
    pub fn from_percent(pct: f64) -> Self {
        Ratio::new(pct / 100.0)
    }

    /// Returns the raw value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the value as a percentage.
    #[must_use]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Returns the complement `1 - self`.
    ///
    /// # Panics
    ///
    /// Panics if `self > 1`, for which the complement is undefined here.
    #[must_use]
    pub fn complement(self) -> Ratio {
        assert!(self.0 <= 1.0, "complement undefined for ratios above 1, got {}", self.0);
        Ratio(1.0 - self.0)
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 > 1.0 {
            write!(f, "{:.2}×", self.0)
        } else {
            write!(f, "{:.1} %", self.as_percent())
        }
    }
}

impl Mul for Ratio {
    type Output = Ratio;

    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.0 * rhs.0)
    }
}

/// A bit-error rate: errors per bit, a very small non-negative number.
///
/// Stored as a raw probability; helper constructors accept the customary
/// `1e-x` notation. The paper's targets: commercial DRAM aims below ~1e-9,
/// SECDED ECC copes with raw rates up to ~1e-6.
///
/// # Examples
///
/// ```
/// use uniserver_units::BitErrorRate;
///
/// let measured = BitErrorRate::new(0.8e-9);
/// assert!(measured <= BitErrorRate::DRAM_TARGET);
/// assert!(measured.is_correctable_by_secded());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct BitErrorRate(f64);

impl BitErrorRate {
    /// Zero errors.
    pub const ZERO: BitErrorRate = BitErrorRate(0.0);
    /// The BER targeted by commercial DRAM parts (paper §6.B): 1e-9.
    pub const DRAM_TARGET: BitErrorRate = BitErrorRate(1e-9);
    /// The maximum raw BER classical SECDED ECC can absorb (paper §6.B,
    /// ref [27]): 1e-6.
    pub const SECDED_LIMIT: BitErrorRate = BitErrorRate(1e-6);

    /// Creates a BER from a raw per-bit error probability.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is negative, above 1, NaN or infinite.
    #[must_use]
    pub fn new(ber: f64) -> Self {
        assert!(
            ber.is_finite() && (0.0..=1.0).contains(&ber),
            "bit-error rate must be a probability in [0, 1], got {ber}"
        );
        BitErrorRate(ber)
    }

    /// Computes a BER from an error count over a number of bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    #[must_use]
    pub fn from_counts(errors: u64, bits: u64) -> Self {
        assert!(bits > 0, "cannot compute a BER over zero bits");
        BitErrorRate::new(errors as f64 / bits as f64)
    }

    /// Returns the raw probability.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether classical SECDED ECC can be expected to correct this raw
    /// rate (paper §6.B).
    #[must_use]
    pub fn is_correctable_by_secded(self) -> bool {
        self <= Self::SECDED_LIMIT
    }

    /// Whether the rate meets commercial DRAM BER targets.
    #[must_use]
    pub fn meets_dram_target(self) -> bool {
        self <= Self::DRAM_TARGET
    }
}

impl Default for BitErrorRate {
    fn default() -> Self {
        BitErrorRate::ZERO
    }
}

impl fmt::Display for BitErrorRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0.0 {
            write!(f, "0")
        } else {
            write!(f, "{:.2e}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_roundtrip() {
        let r = Ratio::from_percent(15.0);
        assert!((r.value() - 0.15).abs() < 1e-12);
        assert!((r.as_percent() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn complement_of_guardband() {
        let g = Ratio::from_percent(30.0);
        assert!((g.complement().value() - 0.70).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "complement undefined")]
    fn complement_above_one_panics() {
        let _ = Ratio::new(36.0).complement();
    }

    #[test]
    fn improvement_factor_display() {
        assert_eq!(Ratio::new(36.0).to_string(), "36.00×");
        assert_eq!(Ratio::new(0.05).to_string(), "5.0 %");
    }

    #[test]
    fn ber_thresholds() {
        assert!(BitErrorRate::new(5e-10).meets_dram_target());
        assert!(!BitErrorRate::new(5e-8).meets_dram_target());
        assert!(BitErrorRate::new(5e-8).is_correctable_by_secded());
        assert!(!BitErrorRate::new(5e-5).is_correctable_by_secded());
    }

    #[test]
    fn ber_from_counts() {
        // 64 errors over an 8 GiB module.
        let bits = 8 * 1024 * 1024 * 1024u64 * 8;
        let ber = BitErrorRate::from_counts(64, bits);
        assert!(ber.value() > 0.0 && ber.value() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero bits")]
    fn ber_zero_bits_panics() {
        let _ = BitErrorRate::from_counts(1, 0);
    }

    #[test]
    fn ber_display() {
        assert_eq!(BitErrorRate::ZERO.to_string(), "0");
        assert_eq!(BitErrorRate::new(1e-9).to_string(), "1.00e-9");
    }
}
