//! Typed physical quantities for the UniServer reproduction.
//!
//! Every model in the workspace manipulates voltages, frequencies, refresh
//! intervals, temperatures, powers and energies. Passing bare `f64`s around
//! invites unit bugs (millivolts vs volts, MHz vs GHz), so this crate wraps
//! each quantity in a newtype with explicit constructors, conversions and
//! the arithmetic that is physically meaningful — and nothing more.
//!
//! # Examples
//!
//! ```
//! use uniserver_units::{Volts, Megahertz, Watts, Seconds};
//!
//! let nominal = Volts::new(0.844);
//! let undervolted = nominal.scaled(0.90); // 10 % below nominal
//! assert!(undervolted < nominal);
//!
//! let f = Megahertz::new(2600.0);
//! assert_eq!(f.as_ghz(), 2.6);
//!
//! let p = Watts::new(15.0);
//! let e = p * Seconds::new(2.0);
//! assert_eq!(e.as_joules(), 30.0);
//! ```

mod data;
mod electrical;
mod energy;
mod frequency;
mod ratio;
mod thermal;
mod time;

pub use data::Bytes;
pub use electrical::Volts;
pub use energy::{Joules, Watts};
pub use frequency::Megahertz;
pub use ratio::{BitErrorRate, Ratio};
pub use thermal::Celsius;
pub use time::Seconds;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn volts_scaling_roundtrip(v in 0.1f64..2.0, s in 0.1f64..1.0) {
            let base = Volts::new(v);
            let scaled = base.scaled(s);
            prop_assert!((scaled.as_volts() - v * s).abs() < 1e-12);
            // Undoing the scale recovers the original to fp precision.
            let back = scaled.scaled(1.0 / s);
            prop_assert!((back.as_volts() - v).abs() < 1e-9);
        }

        #[test]
        fn power_time_energy_consistency(p in 0.0f64..1000.0, t in 0.0f64..1e6) {
            let e = Watts::new(p) * Seconds::new(t);
            prop_assert!((e.as_joules() - p * t).abs() < 1e-6 * (1.0 + p * t));
        }

        #[test]
        fn ratio_percent_roundtrip(x in 0.0f64..1.0) {
            let r = Ratio::new(x);
            prop_assert!((Ratio::from_percent(r.as_percent()).value() - x).abs() < 1e-12);
        }

        #[test]
        fn seconds_millis_roundtrip(ms in 0.0f64..1e9) {
            let s = Seconds::from_millis(ms);
            prop_assert!((s.as_millis() - ms).abs() < 1e-6 * (1.0 + ms));
        }

        #[test]
        fn bytes_ordering_consistent(a in 0u64..1 << 40, b in 0u64..1 << 40) {
            let (x, y) = (Bytes::new(a), Bytes::new(b));
            prop_assert_eq!(x < y, a < b);
            prop_assert_eq!(x + y, Bytes::new(a + b));
        }
    }
}
