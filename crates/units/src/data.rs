//! Data sizes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// A data size in bytes.
///
/// # Examples
///
/// ```
/// use uniserver_units::Bytes;
///
/// let dimm = Bytes::gib(8);
/// assert_eq!(dimm.as_u64(), 8 * 1024 * 1024 * 1024);
/// assert_eq!(dimm.bits(), dimm.as_u64() * 8);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// The zero size.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a size from a raw byte count.
    #[must_use]
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a size in kibibytes.
    #[must_use]
    pub const fn kib(n: u64) -> Self {
        Bytes(n * 1024)
    }

    /// Creates a size in mebibytes.
    #[must_use]
    pub const fn mib(n: u64) -> Self {
        Bytes(n * 1024 * 1024)
    }

    /// Creates a size in gibibytes.
    #[must_use]
    pub const fn gib(n: u64) -> Self {
        Bytes(n * 1024 * 1024 * 1024)
    }

    /// Returns the raw byte count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the size in bits.
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.0 * 8
    }

    /// Returns the size in mebibytes as a float.
    #[must_use]
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Returns the size in gibibytes as a float.
    #[must_use]
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Fraction of `self` relative to `total`.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    #[must_use]
    pub fn fraction_of(self, total: Bytes) -> f64 {
        assert!(total.0 > 0, "total size must be positive");
        self.0 as f64 / total.0 as f64
    }

    /// Saturating subtraction clamping at zero.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: Bytes) -> Option<Bytes> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Bytes(v)),
            None => None,
        }
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const GIB: u64 = 1024 * 1024 * 1024;
        const MIB: u64 = 1024 * 1024;
        const KIB: u64 = 1024;
        if self.0 >= GIB {
            write!(f, "{:.2} GiB", self.as_gib())
        } else if self.0 >= MIB {
            write!(f, "{:.2} MiB", self.as_mib())
        } else if self.0 >= KIB {
            write!(f, "{:.1} KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;

    /// # Panics
    ///
    /// Panics on overflow in debug builds (standard integer semantics).
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl Sub for Bytes {
    type Output = Bytes;

    /// # Panics
    ///
    /// Panics on underflow; use [`Bytes::saturating_sub`] when the order of
    /// operands is not guaranteed.
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Bytes::kib(1), Bytes::new(1024));
        assert_eq!(Bytes::mib(1), Bytes::new(1024 * 1024));
        assert_eq!(Bytes::gib(8).as_gib(), 8.0);
    }

    #[test]
    fn bits_of_a_dimm() {
        assert_eq!(Bytes::gib(8).bits(), 68_719_476_736);
    }

    #[test]
    fn fraction_used_for_footprints() {
        let hypervisor = Bytes::mib(700);
        let total = Bytes::gib(10);
        assert!(hypervisor.fraction_of(total) < 0.07);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Bytes = (1..=4).map(Bytes::gib).sum();
        assert_eq!(total, Bytes::gib(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Bytes::new(512).to_string(), "512 B");
        assert_eq!(Bytes::kib(2).to_string(), "2.0 KiB");
        assert_eq!(Bytes::mib(3).to_string(), "3.00 MiB");
        assert_eq!(Bytes::gib(8).to_string(), "8.00 GiB");
    }

    #[test]
    fn saturating_and_checked() {
        assert_eq!(Bytes::new(1).saturating_sub(Bytes::new(5)), Bytes::ZERO);
        assert_eq!(Bytes::new(u64::MAX).checked_add(Bytes::new(1)), None);
    }
}
