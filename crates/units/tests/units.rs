//! Focused unit tests for the typed quantities: arithmetic,
//! unit conversions, and ratio/percent round-trips.

use uniserver_units::{
    Bytes, Celsius, Joules, Megahertz, Ratio, Seconds, Volts, Watts,
};

#[test]
fn volts_conversions_round_trip() {
    let v = Volts::new(0.980);
    assert!((v.as_millivolts() - 980.0).abs() < 1e-12);
    let back = Volts::from_millivolts(v.as_millivolts());
    assert!((back.as_volts() - v.as_volts()).abs() < 1e-15);
}

#[test]
fn volts_scaling_is_linear() {
    let v = Volts::new(1.0);
    assert!((v.scaled(0.88).as_volts() - 0.88).abs() < 1e-15);
    assert!((v.scaled(0.0).as_volts()).abs() < 1e-15);
}

#[test]
fn seconds_millis_round_trip() {
    let s = Seconds::from_millis(64.0);
    assert!((s.as_secs() - 0.064).abs() < 1e-15);
    assert!((s.as_millis() - 64.0).abs() < 1e-12);
    assert_eq!(Seconds::ZERO.as_secs(), 0.0);
}

#[test]
fn seconds_arithmetic() {
    let a = Seconds::new(1.5);
    let b = Seconds::new(0.5);
    assert!(((a + b).as_secs() - 2.0).abs() < 1e-15);
    assert!(a > b);
    assert!((a.saturating_sub(b).as_secs() - 1.0).abs() < 1e-15);
    assert_eq!(b.saturating_sub(a), Seconds::ZERO, "durations never go negative");
}

#[test]
fn energy_is_power_times_time() {
    let e = Watts::new(35.0) * Seconds::new(10.0);
    assert!((e.as_joules() - 350.0).abs() < 1e-9);
    let sum = e + Joules::new(50.0);
    assert!((sum.as_joules() - 400.0).abs() < 1e-9);
}

#[test]
fn frequency_conversions() {
    let f = Megahertz::from_ghz(2.4);
    assert!((f.as_mhz() - 2400.0).abs() < 1e-9);
    assert!((f.as_ghz() - 2.4).abs() < 1e-12);
}

#[test]
fn bytes_units_compose() {
    assert_eq!(Bytes::kib(1).as_u64(), 1024);
    assert_eq!(Bytes::mib(1).as_u64(), 1024 * 1024);
    assert_eq!(Bytes::gib(8).as_u64(), 8 * 1024 * 1024 * 1024);
    assert_eq!(Bytes::mib(1), Bytes::kib(1024));
    assert_eq!((Bytes::mib(2) + Bytes::mib(3)).as_u64(), Bytes::mib(5).as_u64());
    assert_eq!(Bytes::ZERO.as_u64(), 0);
}

#[test]
fn celsius_delta_above() {
    let t = Celsius::new(55.0);
    assert!((t.delta_above(Celsius::new(25.0)) - 30.0).abs() < 1e-12);
    assert!(Celsius::new(20.0) < t);
}

#[test]
fn ratio_percent_round_trips() {
    for x in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let r = Ratio::new(x);
        assert!((Ratio::from_percent(r.as_percent()).value() - x).abs() < 1e-15);
    }
    assert!((Ratio::from_percent(12.5).value() - 0.125).abs() < 1e-15);
}

#[test]
fn ratio_complement_and_product() {
    let r = Ratio::new(0.3);
    assert!((r.complement().value() - 0.7).abs() < 1e-15);
    assert!((r.complement().complement().value() - 0.3).abs() < 1e-15);
    let p = Ratio::new(0.5) * Ratio::new(0.5);
    assert!((p.value() - 0.25).abs() < 1e-15);
}
