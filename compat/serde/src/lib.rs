//! Offline stand-in for the `serde` crate.
//!
//! Provides the `Serialize`/`Deserialize` names the workspace imports and
//! re-exports the no-op derive macros from `serde_derive`. See
//! `compat/README.md` for the substitution contract.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
