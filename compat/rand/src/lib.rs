//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly the surface the workspace uses: the [`Rng`] trait
//! with `gen`, `gen_range` and `gen_bool`, [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`]. The generator is xoshiro256**
//! seeded through SplitMix64 — deterministic, high-quality, and a pure
//! function of the seed, which is what every experiment in the workspace
//! relies on. It is *not* the same stream as upstream `StdRng` (ChaCha12),
//! so golden values baked against this shim must be re-baked when the real
//! crate is restored.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from the generator's raw output
/// (stand-in for sampling with the `Standard` distribution).
pub trait Standard: Sized {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Debiased multiply-shift (Lemire); span is < 2^64 for all
                // supported types so a 64-bit draw is sufficient.
                let span = span as u64;
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start.wrapping_add((m >> 64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample(rng)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u: f64 = Standard::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Stand-in for `rand::Rng` (0.8 naming: `gen`, `gen_range`, `gen_bool`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Stand-in for `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        /// Expands the seed with SplitMix64, the initialization the xoshiro
        /// authors recommend; a pure function of `seed`.
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn same_seed_same_stream() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn gen_range_stays_in_bounds() {
            let mut r = StdRng::seed_from_u64(7);
            for _ in 0..10_000 {
                let x = r.gen_range(3usize..17);
                assert!((3..17).contains(&x));
                let y = r.gen_range(0..=5u8);
                assert!(y <= 5);
                let f = r.gen_range(-2.0f64..2.0);
                assert!((-2.0..2.0).contains(&f));
            }
        }

        #[test]
        fn gen_f64_is_unit_interval() {
            let mut r = StdRng::seed_from_u64(1);
            for _ in 0..10_000 {
                let x: f64 = r.gen();
                assert!((0.0..1.0).contains(&x));
            }
        }
    }
}
