//! No-op stand-ins for serde's derive macros.
//!
//! The workspace annotates its model types with `#[derive(Serialize,
//! Deserialize)]` so the real serde can be dropped in once registry access
//! exists, but nothing actually serializes through serde today (JSON output
//! is hand-rolled in `uniserver-bench`). These derives therefore only need
//! to accept the input — including `#[serde(...)]` helper attributes — and
//! emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
