//! Offline stand-in for `criterion`.
//!
//! Provides the macro and builder API the workspace benches use
//! (`criterion_group!`, `criterion_main!`, `bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`) backed by a
//! simple wall-clock timer: each benchmark runs a fixed warm-up plus a
//! timed batch and prints mean time per iteration. No statistics, HTML
//! reports, or CLI filtering — just enough to keep the benches compiling,
//! runnable, and honest about relative cost.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed iterations per benchmark (after one warm-up call).
const DEFAULT_BATCH: u32 = 10;

/// Stand-in for `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Stand-in for `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    batch: u32,
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.batch;
    }
}

fn report(group: Option<&str>, label: &str, b: &Bencher) {
    let per_iter = if b.iters == 0 { Duration::ZERO } else { b.elapsed / b.iters };
    match group {
        Some(g) => println!("bench {g}/{label}: {per_iter:?}/iter ({} iters)", b.iters),
        None => println!("bench {label}: {per_iter:?}/iter ({} iters)", b.iters),
    }
}

/// Stand-in for `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { batch: DEFAULT_BATCH, elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        report(None, label, &b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: DEFAULT_BATCH }
    }
}

/// Stand-in for `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    pub fn bench_function<L: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        label: L,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { batch: self.sample_size, elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        report(Some(&self.name), &label.into_label(), &b);
        self
    }

    pub fn bench_with_input<L: IntoBenchmarkId, I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        label: L,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { batch: self.sample_size, elapsed: Duration::ZERO, iters: 0 };
        f(&mut b, input);
        report(Some(&self.name), &label.into_label(), &b);
        self
    }

    pub fn finish(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
