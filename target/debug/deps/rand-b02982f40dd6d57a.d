/root/repo/target/debug/deps/rand-b02982f40dd6d57a.d: compat/rand/src/lib.rs

/root/repo/target/debug/deps/rand-b02982f40dd6d57a: compat/rand/src/lib.rs

compat/rand/src/lib.rs:
