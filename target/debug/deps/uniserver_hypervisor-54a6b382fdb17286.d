/root/repo/target/debug/deps/uniserver_hypervisor-54a6b382fdb17286.d: crates/hypervisor/src/lib.rs crates/hypervisor/src/hypervisor.rs crates/hypervisor/src/memdomain.rs crates/hypervisor/src/objects.rs crates/hypervisor/src/protect.rs crates/hypervisor/src/vm.rs

/root/repo/target/debug/deps/libuniserver_hypervisor-54a6b382fdb17286.rlib: crates/hypervisor/src/lib.rs crates/hypervisor/src/hypervisor.rs crates/hypervisor/src/memdomain.rs crates/hypervisor/src/objects.rs crates/hypervisor/src/protect.rs crates/hypervisor/src/vm.rs

/root/repo/target/debug/deps/libuniserver_hypervisor-54a6b382fdb17286.rmeta: crates/hypervisor/src/lib.rs crates/hypervisor/src/hypervisor.rs crates/hypervisor/src/memdomain.rs crates/hypervisor/src/objects.rs crates/hypervisor/src/protect.rs crates/hypervisor/src/vm.rs

crates/hypervisor/src/lib.rs:
crates/hypervisor/src/hypervisor.rs:
crates/hypervisor/src/memdomain.rs:
crates/hypervisor/src/objects.rs:
crates/hypervisor/src/protect.rs:
crates/hypervisor/src/vm.rs:
