/root/repo/target/debug/deps/uniserver_faultinject-4b0e6fdf76bf33f0.d: crates/faultinject/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_faultinject-4b0e6fdf76bf33f0.rmeta: crates/faultinject/src/lib.rs Cargo.toml

crates/faultinject/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
