/root/repo/target/debug/deps/proptest-650b31b4b98c0385.d: compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-650b31b4b98c0385.rmeta: compat/proptest/src/lib.rs Cargo.toml

compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
