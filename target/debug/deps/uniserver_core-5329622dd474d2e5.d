/root/repo/target/debug/deps/uniserver_core-5329622dd474d2e5.d: crates/core/src/lib.rs crates/core/src/ecosystem.rs crates/core/src/eop.rs crates/core/src/optimizer.rs crates/core/src/security.rs

/root/repo/target/debug/deps/uniserver_core-5329622dd474d2e5: crates/core/src/lib.rs crates/core/src/ecosystem.rs crates/core/src/eop.rs crates/core/src/optimizer.rs crates/core/src/security.rs

crates/core/src/lib.rs:
crates/core/src/ecosystem.rs:
crates/core/src/eop.rs:
crates/core/src/optimizer.rs:
crates/core/src/security.rs:
