/root/repo/target/debug/deps/fleet_sim-be1647a882bcf3b6.d: crates/bench/src/bin/fleet_sim.rs

/root/repo/target/debug/deps/fleet_sim-be1647a882bcf3b6: crates/bench/src/bin/fleet_sim.rs

crates/bench/src/bin/fleet_sim.rs:
