/root/repo/target/debug/deps/uniserver_bench-a762a4284e857830.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fleet.rs crates/bench/src/render.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_bench-a762a4284e857830.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fleet.rs crates/bench/src/render.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fleet.rs:
crates/bench/src/render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
