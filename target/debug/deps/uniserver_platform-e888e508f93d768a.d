/root/repo/target/debug/deps/uniserver_platform-e888e508f93d768a.d: crates/platform/src/lib.rs crates/platform/src/cache.rs crates/platform/src/dram.rs crates/platform/src/mca.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/part.rs crates/platform/src/pmu.rs crates/platform/src/raidr.rs crates/platform/src/sensors.rs crates/platform/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_platform-e888e508f93d768a.rmeta: crates/platform/src/lib.rs crates/platform/src/cache.rs crates/platform/src/dram.rs crates/platform/src/mca.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/part.rs crates/platform/src/pmu.rs crates/platform/src/raidr.rs crates/platform/src/sensors.rs crates/platform/src/workload.rs Cargo.toml

crates/platform/src/lib.rs:
crates/platform/src/cache.rs:
crates/platform/src/dram.rs:
crates/platform/src/mca.rs:
crates/platform/src/msr.rs:
crates/platform/src/node.rs:
crates/platform/src/part.rs:
crates/platform/src/pmu.rs:
crates/platform/src/raidr.rs:
crates/platform/src/sensors.rs:
crates/platform/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
