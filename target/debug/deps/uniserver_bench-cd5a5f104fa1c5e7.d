/root/repo/target/debug/deps/uniserver_bench-cd5a5f104fa1c5e7.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fleet.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/libuniserver_bench-cd5a5f104fa1c5e7.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fleet.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/libuniserver_bench-cd5a5f104fa1c5e7.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fleet.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fleet.rs:
crates/bench/src/render.rs:
