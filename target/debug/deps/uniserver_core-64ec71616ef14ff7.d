/root/repo/target/debug/deps/uniserver_core-64ec71616ef14ff7.d: crates/core/src/lib.rs crates/core/src/ecosystem.rs crates/core/src/eop.rs crates/core/src/optimizer.rs crates/core/src/security.rs

/root/repo/target/debug/deps/libuniserver_core-64ec71616ef14ff7.rlib: crates/core/src/lib.rs crates/core/src/ecosystem.rs crates/core/src/eop.rs crates/core/src/optimizer.rs crates/core/src/security.rs

/root/repo/target/debug/deps/libuniserver_core-64ec71616ef14ff7.rmeta: crates/core/src/lib.rs crates/core/src/ecosystem.rs crates/core/src/eop.rs crates/core/src/optimizer.rs crates/core/src/security.rs

crates/core/src/lib.rs:
crates/core/src/ecosystem.rs:
crates/core/src/eop.rs:
crates/core/src/optimizer.rs:
crates/core/src/security.rs:
