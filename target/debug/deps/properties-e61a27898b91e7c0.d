/root/repo/target/debug/deps/properties-e61a27898b91e7c0.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-e61a27898b91e7c0.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
