/root/repo/target/debug/deps/uniserver-40de4f0a2109f73d.d: src/lib.rs

/root/repo/target/debug/deps/libuniserver-40de4f0a2109f73d.rlib: src/lib.rs

/root/repo/target/debug/deps/libuniserver-40de4f0a2109f73d.rmeta: src/lib.rs

src/lib.rs:
