/root/repo/target/debug/deps/uniserver_tco-1ae1e3dd27a53a48.d: crates/tco/src/lib.rs crates/tco/src/explore.rs crates/tco/src/factors.rs crates/tco/src/model.rs crates/tco/src/yield_model.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_tco-1ae1e3dd27a53a48.rmeta: crates/tco/src/lib.rs crates/tco/src/explore.rs crates/tco/src/factors.rs crates/tco/src/model.rs crates/tco/src/yield_model.rs Cargo.toml

crates/tco/src/lib.rs:
crates/tco/src/explore.rs:
crates/tco/src/factors.rs:
crates/tco/src/model.rs:
crates/tco/src/yield_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
