/root/repo/target/debug/deps/ablation-58cfa0f923e4bf86.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-58cfa0f923e4bf86.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
