/root/repo/target/debug/deps/uniserver_predictor-ad719277267cac46.d: crates/predictor/src/lib.rs crates/predictor/src/advisor.rs crates/predictor/src/bayes.rs crates/predictor/src/features.rs crates/predictor/src/harness.rs crates/predictor/src/logistic.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_predictor-ad719277267cac46.rmeta: crates/predictor/src/lib.rs crates/predictor/src/advisor.rs crates/predictor/src/bayes.rs crates/predictor/src/features.rs crates/predictor/src/harness.rs crates/predictor/src/logistic.rs Cargo.toml

crates/predictor/src/lib.rs:
crates/predictor/src/advisor.rs:
crates/predictor/src/bayes.rs:
crates/predictor/src/features.rs:
crates/predictor/src/harness.rs:
crates/predictor/src/logistic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
