/root/repo/target/debug/deps/uniserver_bench-17c07143fc07cacf.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fleet.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/uniserver_bench-17c07143fc07cacf: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fleet.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fleet.rs:
crates/bench/src/render.rs:
