/root/repo/target/debug/deps/serde-f59bb054f7ccf261.d: compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f59bb054f7ccf261.rlib: compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f59bb054f7ccf261.rmeta: compat/serde/src/lib.rs

compat/serde/src/lib.rs:
