/root/repo/target/debug/deps/repro-42486c848cc8b29d.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-42486c848cc8b29d.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
