/root/repo/target/debug/deps/uniserver_predictor-99698608dfea794a.d: crates/predictor/src/lib.rs crates/predictor/src/advisor.rs crates/predictor/src/bayes.rs crates/predictor/src/features.rs crates/predictor/src/harness.rs crates/predictor/src/logistic.rs

/root/repo/target/debug/deps/libuniserver_predictor-99698608dfea794a.rlib: crates/predictor/src/lib.rs crates/predictor/src/advisor.rs crates/predictor/src/bayes.rs crates/predictor/src/features.rs crates/predictor/src/harness.rs crates/predictor/src/logistic.rs

/root/repo/target/debug/deps/libuniserver_predictor-99698608dfea794a.rmeta: crates/predictor/src/lib.rs crates/predictor/src/advisor.rs crates/predictor/src/bayes.rs crates/predictor/src/features.rs crates/predictor/src/harness.rs crates/predictor/src/logistic.rs

crates/predictor/src/lib.rs:
crates/predictor/src/advisor.rs:
crates/predictor/src/bayes.rs:
crates/predictor/src/features.rs:
crates/predictor/src/harness.rs:
crates/predictor/src/logistic.rs:
