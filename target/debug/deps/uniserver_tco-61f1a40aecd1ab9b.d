/root/repo/target/debug/deps/uniserver_tco-61f1a40aecd1ab9b.d: crates/tco/src/lib.rs crates/tco/src/explore.rs crates/tco/src/factors.rs crates/tco/src/model.rs crates/tco/src/yield_model.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_tco-61f1a40aecd1ab9b.rmeta: crates/tco/src/lib.rs crates/tco/src/explore.rs crates/tco/src/factors.rs crates/tco/src/model.rs crates/tco/src/yield_model.rs Cargo.toml

crates/tco/src/lib.rs:
crates/tco/src/explore.rs:
crates/tco/src/factors.rs:
crates/tco/src/model.rs:
crates/tco/src/yield_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
