/root/repo/target/debug/deps/units-cd9076f97fc23684.d: crates/units/tests/units.rs

/root/repo/target/debug/deps/units-cd9076f97fc23684: crates/units/tests/units.rs

crates/units/tests/units.rs:
