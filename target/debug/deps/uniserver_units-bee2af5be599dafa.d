/root/repo/target/debug/deps/uniserver_units-bee2af5be599dafa.d: crates/units/src/lib.rs crates/units/src/data.rs crates/units/src/electrical.rs crates/units/src/energy.rs crates/units/src/frequency.rs crates/units/src/ratio.rs crates/units/src/thermal.rs crates/units/src/time.rs

/root/repo/target/debug/deps/uniserver_units-bee2af5be599dafa: crates/units/src/lib.rs crates/units/src/data.rs crates/units/src/electrical.rs crates/units/src/energy.rs crates/units/src/frequency.rs crates/units/src/ratio.rs crates/units/src/thermal.rs crates/units/src/time.rs

crates/units/src/lib.rs:
crates/units/src/data.rs:
crates/units/src/electrical.rs:
crates/units/src/energy.rs:
crates/units/src/frequency.rs:
crates/units/src/ratio.rs:
crates/units/src/thermal.rs:
crates/units/src/time.rs:
