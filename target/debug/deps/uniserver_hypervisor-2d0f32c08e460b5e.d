/root/repo/target/debug/deps/uniserver_hypervisor-2d0f32c08e460b5e.d: crates/hypervisor/src/lib.rs crates/hypervisor/src/hypervisor.rs crates/hypervisor/src/memdomain.rs crates/hypervisor/src/objects.rs crates/hypervisor/src/protect.rs crates/hypervisor/src/vm.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_hypervisor-2d0f32c08e460b5e.rmeta: crates/hypervisor/src/lib.rs crates/hypervisor/src/hypervisor.rs crates/hypervisor/src/memdomain.rs crates/hypervisor/src/objects.rs crates/hypervisor/src/protect.rs crates/hypervisor/src/vm.rs Cargo.toml

crates/hypervisor/src/lib.rs:
crates/hypervisor/src/hypervisor.rs:
crates/hypervisor/src/memdomain.rs:
crates/hypervisor/src/objects.rs:
crates/hypervisor/src/protect.rs:
crates/hypervisor/src/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
