/root/repo/target/debug/deps/determinism-29820ea4089abdbd.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-29820ea4089abdbd.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
