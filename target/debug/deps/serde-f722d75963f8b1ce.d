/root/repo/target/debug/deps/serde-f722d75963f8b1ce.d: compat/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-f722d75963f8b1ce.rmeta: compat/serde/src/lib.rs Cargo.toml

compat/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
