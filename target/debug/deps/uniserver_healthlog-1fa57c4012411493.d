/root/repo/target/debug/deps/uniserver_healthlog-1fa57c4012411493.d: crates/healthlog/src/lib.rs crates/healthlog/src/daemon.rs crates/healthlog/src/ledger.rs crates/healthlog/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_healthlog-1fa57c4012411493.rmeta: crates/healthlog/src/lib.rs crates/healthlog/src/daemon.rs crates/healthlog/src/ledger.rs crates/healthlog/src/vector.rs Cargo.toml

crates/healthlog/src/lib.rs:
crates/healthlog/src/daemon.rs:
crates/healthlog/src/ledger.rs:
crates/healthlog/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
