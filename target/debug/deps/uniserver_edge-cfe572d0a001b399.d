/root/repo/target/debug/deps/uniserver_edge-cfe572d0a001b399.d: crates/edge/src/lib.rs crates/edge/src/dvfs.rs crates/edge/src/latency.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_edge-cfe572d0a001b399.rmeta: crates/edge/src/lib.rs crates/edge/src/dvfs.rs crates/edge/src/latency.rs Cargo.toml

crates/edge/src/lib.rs:
crates/edge/src/dvfs.rs:
crates/edge/src/latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
