/root/repo/target/debug/deps/uniserver_tco-daa5bdb0906a02be.d: crates/tco/src/lib.rs crates/tco/src/explore.rs crates/tco/src/factors.rs crates/tco/src/model.rs crates/tco/src/yield_model.rs

/root/repo/target/debug/deps/libuniserver_tco-daa5bdb0906a02be.rlib: crates/tco/src/lib.rs crates/tco/src/explore.rs crates/tco/src/factors.rs crates/tco/src/model.rs crates/tco/src/yield_model.rs

/root/repo/target/debug/deps/libuniserver_tco-daa5bdb0906a02be.rmeta: crates/tco/src/lib.rs crates/tco/src/explore.rs crates/tco/src/factors.rs crates/tco/src/model.rs crates/tco/src/yield_model.rs

crates/tco/src/lib.rs:
crates/tco/src/explore.rs:
crates/tco/src/factors.rs:
crates/tco/src/model.rs:
crates/tco/src/yield_model.rs:
