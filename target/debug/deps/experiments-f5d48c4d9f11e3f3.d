/root/repo/target/debug/deps/experiments-f5d48c4d9f11e3f3.d: crates/bench/benches/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-f5d48c4d9f11e3f3.rmeta: crates/bench/benches/experiments.rs Cargo.toml

crates/bench/benches/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
