/root/repo/target/debug/deps/uniserver_silicon-89617036b8f5a4ef.d: crates/silicon/src/lib.rs crates/silicon/src/aging.rs crates/silicon/src/binning.rs crates/silicon/src/comparisons.rs crates/silicon/src/droop.rs crates/silicon/src/ecc.rs crates/silicon/src/faults.rs crates/silicon/src/guardband.rs crates/silicon/src/math.rs crates/silicon/src/power.rs crates/silicon/src/retention.rs crates/silicon/src/rng.rs crates/silicon/src/variation.rs crates/silicon/src/vmin.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_silicon-89617036b8f5a4ef.rmeta: crates/silicon/src/lib.rs crates/silicon/src/aging.rs crates/silicon/src/binning.rs crates/silicon/src/comparisons.rs crates/silicon/src/droop.rs crates/silicon/src/ecc.rs crates/silicon/src/faults.rs crates/silicon/src/guardband.rs crates/silicon/src/math.rs crates/silicon/src/power.rs crates/silicon/src/retention.rs crates/silicon/src/rng.rs crates/silicon/src/variation.rs crates/silicon/src/vmin.rs Cargo.toml

crates/silicon/src/lib.rs:
crates/silicon/src/aging.rs:
crates/silicon/src/binning.rs:
crates/silicon/src/comparisons.rs:
crates/silicon/src/droop.rs:
crates/silicon/src/ecc.rs:
crates/silicon/src/faults.rs:
crates/silicon/src/guardband.rs:
crates/silicon/src/math.rs:
crates/silicon/src/power.rs:
crates/silicon/src/retention.rs:
crates/silicon/src/rng.rs:
crates/silicon/src/variation.rs:
crates/silicon/src/vmin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
