/root/repo/target/debug/deps/uniserver_stresslog-b4142dad30ee0405.d: crates/stresslog/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_stresslog-b4142dad30ee0405.rmeta: crates/stresslog/src/lib.rs Cargo.toml

crates/stresslog/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
