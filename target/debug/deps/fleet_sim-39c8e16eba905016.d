/root/repo/target/debug/deps/fleet_sim-39c8e16eba905016.d: crates/bench/src/bin/fleet_sim.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_sim-39c8e16eba905016.rmeta: crates/bench/src/bin/fleet_sim.rs Cargo.toml

crates/bench/src/bin/fleet_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
