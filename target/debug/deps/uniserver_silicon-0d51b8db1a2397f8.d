/root/repo/target/debug/deps/uniserver_silicon-0d51b8db1a2397f8.d: crates/silicon/src/lib.rs crates/silicon/src/aging.rs crates/silicon/src/binning.rs crates/silicon/src/comparisons.rs crates/silicon/src/droop.rs crates/silicon/src/ecc.rs crates/silicon/src/faults.rs crates/silicon/src/guardband.rs crates/silicon/src/math.rs crates/silicon/src/power.rs crates/silicon/src/retention.rs crates/silicon/src/rng.rs crates/silicon/src/variation.rs crates/silicon/src/vmin.rs

/root/repo/target/debug/deps/uniserver_silicon-0d51b8db1a2397f8: crates/silicon/src/lib.rs crates/silicon/src/aging.rs crates/silicon/src/binning.rs crates/silicon/src/comparisons.rs crates/silicon/src/droop.rs crates/silicon/src/ecc.rs crates/silicon/src/faults.rs crates/silicon/src/guardband.rs crates/silicon/src/math.rs crates/silicon/src/power.rs crates/silicon/src/retention.rs crates/silicon/src/rng.rs crates/silicon/src/variation.rs crates/silicon/src/vmin.rs

crates/silicon/src/lib.rs:
crates/silicon/src/aging.rs:
crates/silicon/src/binning.rs:
crates/silicon/src/comparisons.rs:
crates/silicon/src/droop.rs:
crates/silicon/src/ecc.rs:
crates/silicon/src/faults.rs:
crates/silicon/src/guardband.rs:
crates/silicon/src/math.rs:
crates/silicon/src/power.rs:
crates/silicon/src/retention.rs:
crates/silicon/src/rng.rs:
crates/silicon/src/variation.rs:
crates/silicon/src/vmin.rs:
