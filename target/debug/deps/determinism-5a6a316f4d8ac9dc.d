/root/repo/target/debug/deps/determinism-5a6a316f4d8ac9dc.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-5a6a316f4d8ac9dc: tests/determinism.rs

tests/determinism.rs:
