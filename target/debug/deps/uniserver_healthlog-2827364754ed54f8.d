/root/repo/target/debug/deps/uniserver_healthlog-2827364754ed54f8.d: crates/healthlog/src/lib.rs crates/healthlog/src/daemon.rs crates/healthlog/src/ledger.rs crates/healthlog/src/vector.rs

/root/repo/target/debug/deps/libuniserver_healthlog-2827364754ed54f8.rlib: crates/healthlog/src/lib.rs crates/healthlog/src/daemon.rs crates/healthlog/src/ledger.rs crates/healthlog/src/vector.rs

/root/repo/target/debug/deps/libuniserver_healthlog-2827364754ed54f8.rmeta: crates/healthlog/src/lib.rs crates/healthlog/src/daemon.rs crates/healthlog/src/ledger.rs crates/healthlog/src/vector.rs

crates/healthlog/src/lib.rs:
crates/healthlog/src/daemon.rs:
crates/healthlog/src/ledger.rs:
crates/healthlog/src/vector.rs:
