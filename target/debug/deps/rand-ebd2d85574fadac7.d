/root/repo/target/debug/deps/rand-ebd2d85574fadac7.d: compat/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-ebd2d85574fadac7.rmeta: compat/rand/src/lib.rs Cargo.toml

compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
