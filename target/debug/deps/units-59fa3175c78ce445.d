/root/repo/target/debug/deps/units-59fa3175c78ce445.d: crates/units/tests/units.rs Cargo.toml

/root/repo/target/debug/deps/libunits-59fa3175c78ce445.rmeta: crates/units/tests/units.rs Cargo.toml

crates/units/tests/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
