/root/repo/target/debug/deps/uniserver_faultinject-49512c8858b85046.d: crates/faultinject/src/lib.rs

/root/repo/target/debug/deps/libuniserver_faultinject-49512c8858b85046.rlib: crates/faultinject/src/lib.rs

/root/repo/target/debug/deps/libuniserver_faultinject-49512c8858b85046.rmeta: crates/faultinject/src/lib.rs

crates/faultinject/src/lib.rs:
