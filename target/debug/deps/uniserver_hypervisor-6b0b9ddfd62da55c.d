/root/repo/target/debug/deps/uniserver_hypervisor-6b0b9ddfd62da55c.d: crates/hypervisor/src/lib.rs crates/hypervisor/src/hypervisor.rs crates/hypervisor/src/memdomain.rs crates/hypervisor/src/objects.rs crates/hypervisor/src/protect.rs crates/hypervisor/src/vm.rs

/root/repo/target/debug/deps/uniserver_hypervisor-6b0b9ddfd62da55c: crates/hypervisor/src/lib.rs crates/hypervisor/src/hypervisor.rs crates/hypervisor/src/memdomain.rs crates/hypervisor/src/objects.rs crates/hypervisor/src/protect.rs crates/hypervisor/src/vm.rs

crates/hypervisor/src/lib.rs:
crates/hypervisor/src/hypervisor.rs:
crates/hypervisor/src/memdomain.rs:
crates/hypervisor/src/objects.rs:
crates/hypervisor/src/protect.rs:
crates/hypervisor/src/vm.rs:
