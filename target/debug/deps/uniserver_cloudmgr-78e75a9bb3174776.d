/root/repo/target/debug/deps/uniserver_cloudmgr-78e75a9bb3174776.d: crates/cloudmgr/src/lib.rs crates/cloudmgr/src/cluster.rs crates/cloudmgr/src/failure.rs crates/cloudmgr/src/migrate.rs crates/cloudmgr/src/node.rs crates/cloudmgr/src/scheduler.rs crates/cloudmgr/src/sla.rs crates/cloudmgr/src/stream.rs

/root/repo/target/debug/deps/uniserver_cloudmgr-78e75a9bb3174776: crates/cloudmgr/src/lib.rs crates/cloudmgr/src/cluster.rs crates/cloudmgr/src/failure.rs crates/cloudmgr/src/migrate.rs crates/cloudmgr/src/node.rs crates/cloudmgr/src/scheduler.rs crates/cloudmgr/src/sla.rs crates/cloudmgr/src/stream.rs

crates/cloudmgr/src/lib.rs:
crates/cloudmgr/src/cluster.rs:
crates/cloudmgr/src/failure.rs:
crates/cloudmgr/src/migrate.rs:
crates/cloudmgr/src/node.rs:
crates/cloudmgr/src/scheduler.rs:
crates/cloudmgr/src/sla.rs:
crates/cloudmgr/src/stream.rs:
