/root/repo/target/debug/deps/uniserver_faultinject-a042e0bf006fc905.d: crates/faultinject/src/lib.rs

/root/repo/target/debug/deps/uniserver_faultinject-a042e0bf006fc905: crates/faultinject/src/lib.rs

crates/faultinject/src/lib.rs:
