/root/repo/target/debug/deps/uniserver_stresslog-9e1a7442f8715ca0.d: crates/stresslog/src/lib.rs

/root/repo/target/debug/deps/libuniserver_stresslog-9e1a7442f8715ca0.rlib: crates/stresslog/src/lib.rs

/root/repo/target/debug/deps/libuniserver_stresslog-9e1a7442f8715ca0.rmeta: crates/stresslog/src/lib.rs

crates/stresslog/src/lib.rs:
