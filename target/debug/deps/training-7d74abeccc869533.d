/root/repo/target/debug/deps/training-7d74abeccc869533.d: crates/predictor/tests/training.rs Cargo.toml

/root/repo/target/debug/deps/libtraining-7d74abeccc869533.rmeta: crates/predictor/tests/training.rs Cargo.toml

crates/predictor/tests/training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
