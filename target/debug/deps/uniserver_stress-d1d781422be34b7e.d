/root/repo/target/debug/deps/uniserver_stress-d1d781422be34b7e.d: crates/stress/src/lib.rs crates/stress/src/campaign.rs crates/stress/src/genetic.rs crates/stress/src/kernels.rs crates/stress/src/patterns.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_stress-d1d781422be34b7e.rmeta: crates/stress/src/lib.rs crates/stress/src/campaign.rs crates/stress/src/genetic.rs crates/stress/src/kernels.rs crates/stress/src/patterns.rs Cargo.toml

crates/stress/src/lib.rs:
crates/stress/src/campaign.rs:
crates/stress/src/genetic.rs:
crates/stress/src/kernels.rs:
crates/stress/src/patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
