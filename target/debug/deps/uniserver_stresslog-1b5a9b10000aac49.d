/root/repo/target/debug/deps/uniserver_stresslog-1b5a9b10000aac49.d: crates/stresslog/src/lib.rs

/root/repo/target/debug/deps/uniserver_stresslog-1b5a9b10000aac49: crates/stresslog/src/lib.rs

crates/stresslog/src/lib.rs:
