/root/repo/target/debug/deps/uniserver_edge-3c77831b7a45dbfe.d: crates/edge/src/lib.rs crates/edge/src/dvfs.rs crates/edge/src/latency.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_edge-3c77831b7a45dbfe.rmeta: crates/edge/src/lib.rs crates/edge/src/dvfs.rs crates/edge/src/latency.rs Cargo.toml

crates/edge/src/lib.rs:
crates/edge/src/dvfs.rs:
crates/edge/src/latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
