/root/repo/target/debug/deps/uniserver_cloudmgr-730f42f04c89da97.d: crates/cloudmgr/src/lib.rs crates/cloudmgr/src/cluster.rs crates/cloudmgr/src/failure.rs crates/cloudmgr/src/migrate.rs crates/cloudmgr/src/node.rs crates/cloudmgr/src/scheduler.rs crates/cloudmgr/src/sla.rs crates/cloudmgr/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_cloudmgr-730f42f04c89da97.rmeta: crates/cloudmgr/src/lib.rs crates/cloudmgr/src/cluster.rs crates/cloudmgr/src/failure.rs crates/cloudmgr/src/migrate.rs crates/cloudmgr/src/node.rs crates/cloudmgr/src/scheduler.rs crates/cloudmgr/src/sla.rs crates/cloudmgr/src/stream.rs Cargo.toml

crates/cloudmgr/src/lib.rs:
crates/cloudmgr/src/cluster.rs:
crates/cloudmgr/src/failure.rs:
crates/cloudmgr/src/migrate.rs:
crates/cloudmgr/src/node.rs:
crates/cloudmgr/src/scheduler.rs:
crates/cloudmgr/src/sla.rs:
crates/cloudmgr/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
