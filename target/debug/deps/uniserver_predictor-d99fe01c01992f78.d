/root/repo/target/debug/deps/uniserver_predictor-d99fe01c01992f78.d: crates/predictor/src/lib.rs crates/predictor/src/advisor.rs crates/predictor/src/bayes.rs crates/predictor/src/features.rs crates/predictor/src/harness.rs crates/predictor/src/logistic.rs

/root/repo/target/debug/deps/uniserver_predictor-d99fe01c01992f78: crates/predictor/src/lib.rs crates/predictor/src/advisor.rs crates/predictor/src/bayes.rs crates/predictor/src/features.rs crates/predictor/src/harness.rs crates/predictor/src/logistic.rs

crates/predictor/src/lib.rs:
crates/predictor/src/advisor.rs:
crates/predictor/src/bayes.rs:
crates/predictor/src/features.rs:
crates/predictor/src/harness.rs:
crates/predictor/src/logistic.rs:
