/root/repo/target/debug/deps/uniserver_stress-663db42ae8c15f22.d: crates/stress/src/lib.rs crates/stress/src/campaign.rs crates/stress/src/genetic.rs crates/stress/src/kernels.rs crates/stress/src/patterns.rs

/root/repo/target/debug/deps/uniserver_stress-663db42ae8c15f22: crates/stress/src/lib.rs crates/stress/src/campaign.rs crates/stress/src/genetic.rs crates/stress/src/kernels.rs crates/stress/src/patterns.rs

crates/stress/src/lib.rs:
crates/stress/src/campaign.rs:
crates/stress/src/genetic.rs:
crates/stress/src/kernels.rs:
crates/stress/src/patterns.rs:
