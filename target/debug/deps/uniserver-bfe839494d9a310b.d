/root/repo/target/debug/deps/uniserver-bfe839494d9a310b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver-bfe839494d9a310b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
