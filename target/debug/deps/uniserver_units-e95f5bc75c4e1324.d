/root/repo/target/debug/deps/uniserver_units-e95f5bc75c4e1324.d: crates/units/src/lib.rs crates/units/src/data.rs crates/units/src/electrical.rs crates/units/src/energy.rs crates/units/src/frequency.rs crates/units/src/ratio.rs crates/units/src/thermal.rs crates/units/src/time.rs

/root/repo/target/debug/deps/libuniserver_units-e95f5bc75c4e1324.rlib: crates/units/src/lib.rs crates/units/src/data.rs crates/units/src/electrical.rs crates/units/src/energy.rs crates/units/src/frequency.rs crates/units/src/ratio.rs crates/units/src/thermal.rs crates/units/src/time.rs

/root/repo/target/debug/deps/libuniserver_units-e95f5bc75c4e1324.rmeta: crates/units/src/lib.rs crates/units/src/data.rs crates/units/src/electrical.rs crates/units/src/energy.rs crates/units/src/frequency.rs crates/units/src/ratio.rs crates/units/src/thermal.rs crates/units/src/time.rs

crates/units/src/lib.rs:
crates/units/src/data.rs:
crates/units/src/electrical.rs:
crates/units/src/energy.rs:
crates/units/src/frequency.rs:
crates/units/src/ratio.rs:
crates/units/src/thermal.rs:
crates/units/src/time.rs:
