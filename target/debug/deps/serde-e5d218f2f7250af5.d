/root/repo/target/debug/deps/serde-e5d218f2f7250af5.d: compat/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-e5d218f2f7250af5.rmeta: compat/serde/src/lib.rs Cargo.toml

compat/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
