/root/repo/target/debug/deps/uniserver_edge-44c9f31f6dfc3109.d: crates/edge/src/lib.rs crates/edge/src/dvfs.rs crates/edge/src/latency.rs

/root/repo/target/debug/deps/libuniserver_edge-44c9f31f6dfc3109.rlib: crates/edge/src/lib.rs crates/edge/src/dvfs.rs crates/edge/src/latency.rs

/root/repo/target/debug/deps/libuniserver_edge-44c9f31f6dfc3109.rmeta: crates/edge/src/lib.rs crates/edge/src/dvfs.rs crates/edge/src/latency.rs

crates/edge/src/lib.rs:
crates/edge/src/dvfs.rs:
crates/edge/src/latency.rs:
