/root/repo/target/debug/deps/uniserver-2cc4da7c8b6ac4c5.d: src/lib.rs

/root/repo/target/debug/deps/uniserver-2cc4da7c8b6ac4c5: src/lib.rs

src/lib.rs:
