/root/repo/target/debug/deps/proptest-bed2d4cff23b7cd2.d: compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-bed2d4cff23b7cd2.rmeta: compat/proptest/src/lib.rs Cargo.toml

compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
