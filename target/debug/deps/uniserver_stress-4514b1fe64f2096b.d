/root/repo/target/debug/deps/uniserver_stress-4514b1fe64f2096b.d: crates/stress/src/lib.rs crates/stress/src/campaign.rs crates/stress/src/genetic.rs crates/stress/src/kernels.rs crates/stress/src/patterns.rs

/root/repo/target/debug/deps/libuniserver_stress-4514b1fe64f2096b.rlib: crates/stress/src/lib.rs crates/stress/src/campaign.rs crates/stress/src/genetic.rs crates/stress/src/kernels.rs crates/stress/src/patterns.rs

/root/repo/target/debug/deps/libuniserver_stress-4514b1fe64f2096b.rmeta: crates/stress/src/lib.rs crates/stress/src/campaign.rs crates/stress/src/genetic.rs crates/stress/src/kernels.rs crates/stress/src/patterns.rs

crates/stress/src/lib.rs:
crates/stress/src/campaign.rs:
crates/stress/src/genetic.rs:
crates/stress/src/kernels.rs:
crates/stress/src/patterns.rs:
