/root/repo/target/debug/deps/repro-ed7ffee6e3bd099c.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-ed7ffee6e3bd099c.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
