/root/repo/target/debug/deps/uniserver_bench-a054bc1a2c52281d.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fleet.rs crates/bench/src/render.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_bench-a054bc1a2c52281d.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fleet.rs crates/bench/src/render.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fleet.rs:
crates/bench/src/render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
