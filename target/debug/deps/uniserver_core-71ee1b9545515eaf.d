/root/repo/target/debug/deps/uniserver_core-71ee1b9545515eaf.d: crates/core/src/lib.rs crates/core/src/ecosystem.rs crates/core/src/eop.rs crates/core/src/optimizer.rs crates/core/src/security.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_core-71ee1b9545515eaf.rmeta: crates/core/src/lib.rs crates/core/src/ecosystem.rs crates/core/src/eop.rs crates/core/src/optimizer.rs crates/core/src/security.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/ecosystem.rs:
crates/core/src/eop.rs:
crates/core/src/optimizer.rs:
crates/core/src/security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
