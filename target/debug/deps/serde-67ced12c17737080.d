/root/repo/target/debug/deps/serde-67ced12c17737080.d: compat/serde/src/lib.rs

/root/repo/target/debug/deps/serde-67ced12c17737080: compat/serde/src/lib.rs

compat/serde/src/lib.rs:
