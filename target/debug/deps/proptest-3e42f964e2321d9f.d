/root/repo/target/debug/deps/proptest-3e42f964e2321d9f.d: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3e42f964e2321d9f.rlib: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3e42f964e2321d9f.rmeta: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
