/root/repo/target/debug/deps/uniserver_cloudmgr-dd8575de30746d28.d: crates/cloudmgr/src/lib.rs crates/cloudmgr/src/cluster.rs crates/cloudmgr/src/failure.rs crates/cloudmgr/src/migrate.rs crates/cloudmgr/src/node.rs crates/cloudmgr/src/scheduler.rs crates/cloudmgr/src/sla.rs crates/cloudmgr/src/stream.rs

/root/repo/target/debug/deps/libuniserver_cloudmgr-dd8575de30746d28.rlib: crates/cloudmgr/src/lib.rs crates/cloudmgr/src/cluster.rs crates/cloudmgr/src/failure.rs crates/cloudmgr/src/migrate.rs crates/cloudmgr/src/node.rs crates/cloudmgr/src/scheduler.rs crates/cloudmgr/src/sla.rs crates/cloudmgr/src/stream.rs

/root/repo/target/debug/deps/libuniserver_cloudmgr-dd8575de30746d28.rmeta: crates/cloudmgr/src/lib.rs crates/cloudmgr/src/cluster.rs crates/cloudmgr/src/failure.rs crates/cloudmgr/src/migrate.rs crates/cloudmgr/src/node.rs crates/cloudmgr/src/scheduler.rs crates/cloudmgr/src/sla.rs crates/cloudmgr/src/stream.rs

crates/cloudmgr/src/lib.rs:
crates/cloudmgr/src/cluster.rs:
crates/cloudmgr/src/failure.rs:
crates/cloudmgr/src/migrate.rs:
crates/cloudmgr/src/node.rs:
crates/cloudmgr/src/scheduler.rs:
crates/cloudmgr/src/sla.rs:
crates/cloudmgr/src/stream.rs:
