/root/repo/target/debug/deps/resilience-ffaa1353df647ca8.d: tests/resilience.rs Cargo.toml

/root/repo/target/debug/deps/libresilience-ffaa1353df647ca8.rmeta: tests/resilience.rs Cargo.toml

tests/resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
