/root/repo/target/debug/deps/uniserver_faultinject-c7496edd4221581a.d: crates/faultinject/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_faultinject-c7496edd4221581a.rmeta: crates/faultinject/src/lib.rs Cargo.toml

crates/faultinject/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
