/root/repo/target/debug/deps/full_stack-7352504793039a2c.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-7352504793039a2c: tests/full_stack.rs

tests/full_stack.rs:
