/root/repo/target/debug/deps/uniserver_tco-2d5b5389dbc804a2.d: crates/tco/src/lib.rs crates/tco/src/explore.rs crates/tco/src/factors.rs crates/tco/src/model.rs crates/tco/src/yield_model.rs

/root/repo/target/debug/deps/uniserver_tco-2d5b5389dbc804a2: crates/tco/src/lib.rs crates/tco/src/explore.rs crates/tco/src/factors.rs crates/tco/src/model.rs crates/tco/src/yield_model.rs

crates/tco/src/lib.rs:
crates/tco/src/explore.rs:
crates/tco/src/factors.rs:
crates/tco/src/model.rs:
crates/tco/src/yield_model.rs:
