/root/repo/target/debug/deps/uniserver-f938d55c8f94d9cb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver-f938d55c8f94d9cb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
