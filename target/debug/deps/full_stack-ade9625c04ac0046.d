/root/repo/target/debug/deps/full_stack-ade9625c04ac0046.d: tests/full_stack.rs Cargo.toml

/root/repo/target/debug/deps/libfull_stack-ade9625c04ac0046.rmeta: tests/full_stack.rs Cargo.toml

tests/full_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
