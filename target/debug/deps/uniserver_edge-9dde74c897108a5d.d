/root/repo/target/debug/deps/uniserver_edge-9dde74c897108a5d.d: crates/edge/src/lib.rs crates/edge/src/dvfs.rs crates/edge/src/latency.rs

/root/repo/target/debug/deps/uniserver_edge-9dde74c897108a5d: crates/edge/src/lib.rs crates/edge/src/dvfs.rs crates/edge/src/latency.rs

crates/edge/src/lib.rs:
crates/edge/src/dvfs.rs:
crates/edge/src/latency.rs:
