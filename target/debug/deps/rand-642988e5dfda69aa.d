/root/repo/target/debug/deps/rand-642988e5dfda69aa.d: compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-642988e5dfda69aa.rlib: compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-642988e5dfda69aa.rmeta: compat/rand/src/lib.rs

compat/rand/src/lib.rs:
