/root/repo/target/debug/deps/uniserver_stresslog-67cc64a52fd3e553.d: crates/stresslog/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_stresslog-67cc64a52fd3e553.rmeta: crates/stresslog/src/lib.rs Cargo.toml

crates/stresslog/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
