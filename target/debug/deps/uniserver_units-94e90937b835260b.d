/root/repo/target/debug/deps/uniserver_units-94e90937b835260b.d: crates/units/src/lib.rs crates/units/src/data.rs crates/units/src/electrical.rs crates/units/src/energy.rs crates/units/src/frequency.rs crates/units/src/ratio.rs crates/units/src/thermal.rs crates/units/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_units-94e90937b835260b.rmeta: crates/units/src/lib.rs crates/units/src/data.rs crates/units/src/electrical.rs crates/units/src/energy.rs crates/units/src/frequency.rs crates/units/src/ratio.rs crates/units/src/thermal.rs crates/units/src/time.rs Cargo.toml

crates/units/src/lib.rs:
crates/units/src/data.rs:
crates/units/src/electrical.rs:
crates/units/src/energy.rs:
crates/units/src/frequency.rs:
crates/units/src/ratio.rs:
crates/units/src/thermal.rs:
crates/units/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
