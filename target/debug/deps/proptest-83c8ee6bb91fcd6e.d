/root/repo/target/debug/deps/proptest-83c8ee6bb91fcd6e.d: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-83c8ee6bb91fcd6e: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
