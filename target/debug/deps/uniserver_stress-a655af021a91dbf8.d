/root/repo/target/debug/deps/uniserver_stress-a655af021a91dbf8.d: crates/stress/src/lib.rs crates/stress/src/campaign.rs crates/stress/src/genetic.rs crates/stress/src/kernels.rs crates/stress/src/patterns.rs Cargo.toml

/root/repo/target/debug/deps/libuniserver_stress-a655af021a91dbf8.rmeta: crates/stress/src/lib.rs crates/stress/src/campaign.rs crates/stress/src/genetic.rs crates/stress/src/kernels.rs crates/stress/src/patterns.rs Cargo.toml

crates/stress/src/lib.rs:
crates/stress/src/campaign.rs:
crates/stress/src/genetic.rs:
crates/stress/src/kernels.rs:
crates/stress/src/patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
