/root/repo/target/debug/deps/experiment_shapes-2cf5b7163ea255f9.d: tests/experiment_shapes.rs

/root/repo/target/debug/deps/experiment_shapes-2cf5b7163ea255f9: tests/experiment_shapes.rs

tests/experiment_shapes.rs:
