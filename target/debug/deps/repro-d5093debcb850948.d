/root/repo/target/debug/deps/repro-d5093debcb850948.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-d5093debcb850948: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
