/root/repo/target/debug/deps/fleet_sim-1a61e29e5a0824fd.d: crates/bench/src/bin/fleet_sim.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_sim-1a61e29e5a0824fd.rmeta: crates/bench/src/bin/fleet_sim.rs Cargo.toml

crates/bench/src/bin/fleet_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
