/root/repo/target/debug/deps/experiment_shapes-8d3ce97845e8d7a4.d: tests/experiment_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libexperiment_shapes-8d3ce97845e8d7a4.rmeta: tests/experiment_shapes.rs Cargo.toml

tests/experiment_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
