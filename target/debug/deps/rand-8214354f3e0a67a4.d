/root/repo/target/debug/deps/rand-8214354f3e0a67a4.d: compat/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-8214354f3e0a67a4.rmeta: compat/rand/src/lib.rs Cargo.toml

compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
