/root/repo/target/debug/deps/training-bf8f054997137d0f.d: crates/predictor/tests/training.rs

/root/repo/target/debug/deps/training-bf8f054997137d0f: crates/predictor/tests/training.rs

crates/predictor/tests/training.rs:
