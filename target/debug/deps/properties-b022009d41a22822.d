/root/repo/target/debug/deps/properties-b022009d41a22822.d: tests/properties.rs

/root/repo/target/debug/deps/properties-b022009d41a22822: tests/properties.rs

tests/properties.rs:
