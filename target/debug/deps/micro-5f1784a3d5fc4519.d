/root/repo/target/debug/deps/micro-5f1784a3d5fc4519.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-5f1784a3d5fc4519.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
