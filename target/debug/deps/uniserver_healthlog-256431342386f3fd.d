/root/repo/target/debug/deps/uniserver_healthlog-256431342386f3fd.d: crates/healthlog/src/lib.rs crates/healthlog/src/daemon.rs crates/healthlog/src/ledger.rs crates/healthlog/src/vector.rs

/root/repo/target/debug/deps/uniserver_healthlog-256431342386f3fd: crates/healthlog/src/lib.rs crates/healthlog/src/daemon.rs crates/healthlog/src/ledger.rs crates/healthlog/src/vector.rs

crates/healthlog/src/lib.rs:
crates/healthlog/src/daemon.rs:
crates/healthlog/src/ledger.rs:
crates/healthlog/src/vector.rs:
