/root/repo/target/debug/deps/resilience-601a6359c88d82f8.d: tests/resilience.rs

/root/repo/target/debug/deps/resilience-601a6359c88d82f8: tests/resilience.rs

tests/resilience.rs:
