/root/repo/target/debug/examples/quickstart-e4f6c44609ddbaaf.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e4f6c44609ddbaaf: examples/quickstart.rs

examples/quickstart.rs:
