/root/repo/target/debug/examples/undervolt_characterization-ee9799314185b575.d: examples/undervolt_characterization.rs Cargo.toml

/root/repo/target/debug/examples/libundervolt_characterization-ee9799314185b575.rmeta: examples/undervolt_characterization.rs Cargo.toml

examples/undervolt_characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
