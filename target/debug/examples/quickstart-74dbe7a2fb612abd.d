/root/repo/target/debug/examples/quickstart-74dbe7a2fb612abd.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-74dbe7a2fb612abd.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
