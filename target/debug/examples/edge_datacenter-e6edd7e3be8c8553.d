/root/repo/target/debug/examples/edge_datacenter-e6edd7e3be8c8553.d: examples/edge_datacenter.rs Cargo.toml

/root/repo/target/debug/examples/libedge_datacenter-e6edd7e3be8c8553.rmeta: examples/edge_datacenter.rs Cargo.toml

examples/edge_datacenter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
