/root/repo/target/debug/examples/resilient_memory-6e81005dd27e0f18.d: examples/resilient_memory.rs Cargo.toml

/root/repo/target/debug/examples/libresilient_memory-6e81005dd27e0f18.rmeta: examples/resilient_memory.rs Cargo.toml

examples/resilient_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
