/root/repo/target/debug/examples/fleet_characterization-8d67b6cbe37a289e.d: examples/fleet_characterization.rs

/root/repo/target/debug/examples/fleet_characterization-8d67b6cbe37a289e: examples/fleet_characterization.rs

examples/fleet_characterization.rs:
