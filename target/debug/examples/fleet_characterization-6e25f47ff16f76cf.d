/root/repo/target/debug/examples/fleet_characterization-6e25f47ff16f76cf.d: examples/fleet_characterization.rs Cargo.toml

/root/repo/target/debug/examples/libfleet_characterization-6e25f47ff16f76cf.rmeta: examples/fleet_characterization.rs Cargo.toml

examples/fleet_characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
