/root/repo/target/debug/examples/resilient_memory-09f3de401408e035.d: examples/resilient_memory.rs

/root/repo/target/debug/examples/resilient_memory-09f3de401408e035: examples/resilient_memory.rs

examples/resilient_memory.rs:
