/root/repo/target/debug/examples/edge_datacenter-98d23754919ea67c.d: examples/edge_datacenter.rs

/root/repo/target/debug/examples/edge_datacenter-98d23754919ea67c: examples/edge_datacenter.rs

examples/edge_datacenter.rs:
