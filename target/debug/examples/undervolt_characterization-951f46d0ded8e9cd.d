/root/repo/target/debug/examples/undervolt_characterization-951f46d0ded8e9cd.d: examples/undervolt_characterization.rs

/root/repo/target/debug/examples/undervolt_characterization-951f46d0ded8e9cd: examples/undervolt_characterization.rs

examples/undervolt_characterization.rs:
