/root/repo/target/release/deps/repro-4a846bcc337ff21e.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-4a846bcc337ff21e: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
