/root/repo/target/release/deps/micro-8c54d646ca33da33.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-8c54d646ca33da33: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
