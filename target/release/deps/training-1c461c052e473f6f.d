/root/repo/target/release/deps/training-1c461c052e473f6f.d: crates/predictor/tests/training.rs

/root/repo/target/release/deps/training-1c461c052e473f6f: crates/predictor/tests/training.rs

crates/predictor/tests/training.rs:
