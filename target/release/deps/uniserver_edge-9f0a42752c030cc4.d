/root/repo/target/release/deps/uniserver_edge-9f0a42752c030cc4.d: crates/edge/src/lib.rs crates/edge/src/dvfs.rs crates/edge/src/latency.rs

/root/repo/target/release/deps/uniserver_edge-9f0a42752c030cc4: crates/edge/src/lib.rs crates/edge/src/dvfs.rs crates/edge/src/latency.rs

crates/edge/src/lib.rs:
crates/edge/src/dvfs.rs:
crates/edge/src/latency.rs:
