/root/repo/target/release/deps/serde-63817166c204aa63.d: compat/serde/src/lib.rs

/root/repo/target/release/deps/libserde-63817166c204aa63.rlib: compat/serde/src/lib.rs

/root/repo/target/release/deps/libserde-63817166c204aa63.rmeta: compat/serde/src/lib.rs

compat/serde/src/lib.rs:
