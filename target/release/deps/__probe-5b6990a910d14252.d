/root/repo/target/release/deps/__probe-5b6990a910d14252.d: crates/predictor/tests/__probe.rs

/root/repo/target/release/deps/__probe-5b6990a910d14252: crates/predictor/tests/__probe.rs

crates/predictor/tests/__probe.rs:
