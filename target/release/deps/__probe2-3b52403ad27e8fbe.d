/root/repo/target/release/deps/__probe2-3b52403ad27e8fbe.d: tests/__probe2.rs

/root/repo/target/release/deps/__probe2-3b52403ad27e8fbe: tests/__probe2.rs

tests/__probe2.rs:
