/root/repo/target/release/deps/uniserver_units-3e0bae37f363b584.d: crates/units/src/lib.rs crates/units/src/data.rs crates/units/src/electrical.rs crates/units/src/energy.rs crates/units/src/frequency.rs crates/units/src/ratio.rs crates/units/src/thermal.rs crates/units/src/time.rs

/root/repo/target/release/deps/libuniserver_units-3e0bae37f363b584.rlib: crates/units/src/lib.rs crates/units/src/data.rs crates/units/src/electrical.rs crates/units/src/energy.rs crates/units/src/frequency.rs crates/units/src/ratio.rs crates/units/src/thermal.rs crates/units/src/time.rs

/root/repo/target/release/deps/libuniserver_units-3e0bae37f363b584.rmeta: crates/units/src/lib.rs crates/units/src/data.rs crates/units/src/electrical.rs crates/units/src/energy.rs crates/units/src/frequency.rs crates/units/src/ratio.rs crates/units/src/thermal.rs crates/units/src/time.rs

crates/units/src/lib.rs:
crates/units/src/data.rs:
crates/units/src/electrical.rs:
crates/units/src/energy.rs:
crates/units/src/frequency.rs:
crates/units/src/ratio.rs:
crates/units/src/thermal.rs:
crates/units/src/time.rs:
