/root/repo/target/release/deps/rand-03b7aad8f9da05e1.d: compat/rand/src/lib.rs

/root/repo/target/release/deps/rand-03b7aad8f9da05e1: compat/rand/src/lib.rs

compat/rand/src/lib.rs:
