/root/repo/target/release/deps/uniserver_cloudmgr-981953c42aaac167.d: crates/cloudmgr/src/lib.rs crates/cloudmgr/src/cluster.rs crates/cloudmgr/src/failure.rs crates/cloudmgr/src/migrate.rs crates/cloudmgr/src/node.rs crates/cloudmgr/src/scheduler.rs crates/cloudmgr/src/sla.rs crates/cloudmgr/src/stream.rs

/root/repo/target/release/deps/libuniserver_cloudmgr-981953c42aaac167.rlib: crates/cloudmgr/src/lib.rs crates/cloudmgr/src/cluster.rs crates/cloudmgr/src/failure.rs crates/cloudmgr/src/migrate.rs crates/cloudmgr/src/node.rs crates/cloudmgr/src/scheduler.rs crates/cloudmgr/src/sla.rs crates/cloudmgr/src/stream.rs

/root/repo/target/release/deps/libuniserver_cloudmgr-981953c42aaac167.rmeta: crates/cloudmgr/src/lib.rs crates/cloudmgr/src/cluster.rs crates/cloudmgr/src/failure.rs crates/cloudmgr/src/migrate.rs crates/cloudmgr/src/node.rs crates/cloudmgr/src/scheduler.rs crates/cloudmgr/src/sla.rs crates/cloudmgr/src/stream.rs

crates/cloudmgr/src/lib.rs:
crates/cloudmgr/src/cluster.rs:
crates/cloudmgr/src/failure.rs:
crates/cloudmgr/src/migrate.rs:
crates/cloudmgr/src/node.rs:
crates/cloudmgr/src/scheduler.rs:
crates/cloudmgr/src/sla.rs:
crates/cloudmgr/src/stream.rs:
