/root/repo/target/release/deps/uniserver-e3fe69642edd6776.d: src/lib.rs

/root/repo/target/release/deps/uniserver-e3fe69642edd6776: src/lib.rs

src/lib.rs:
