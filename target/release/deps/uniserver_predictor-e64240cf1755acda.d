/root/repo/target/release/deps/uniserver_predictor-e64240cf1755acda.d: crates/predictor/src/lib.rs crates/predictor/src/advisor.rs crates/predictor/src/bayes.rs crates/predictor/src/features.rs crates/predictor/src/harness.rs crates/predictor/src/logistic.rs

/root/repo/target/release/deps/uniserver_predictor-e64240cf1755acda: crates/predictor/src/lib.rs crates/predictor/src/advisor.rs crates/predictor/src/bayes.rs crates/predictor/src/features.rs crates/predictor/src/harness.rs crates/predictor/src/logistic.rs

crates/predictor/src/lib.rs:
crates/predictor/src/advisor.rs:
crates/predictor/src/bayes.rs:
crates/predictor/src/features.rs:
crates/predictor/src/harness.rs:
crates/predictor/src/logistic.rs:
