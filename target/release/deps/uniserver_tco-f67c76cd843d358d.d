/root/repo/target/release/deps/uniserver_tco-f67c76cd843d358d.d: crates/tco/src/lib.rs crates/tco/src/explore.rs crates/tco/src/factors.rs crates/tco/src/model.rs crates/tco/src/yield_model.rs

/root/repo/target/release/deps/libuniserver_tco-f67c76cd843d358d.rlib: crates/tco/src/lib.rs crates/tco/src/explore.rs crates/tco/src/factors.rs crates/tco/src/model.rs crates/tco/src/yield_model.rs

/root/repo/target/release/deps/libuniserver_tco-f67c76cd843d358d.rmeta: crates/tco/src/lib.rs crates/tco/src/explore.rs crates/tco/src/factors.rs crates/tco/src/model.rs crates/tco/src/yield_model.rs

crates/tco/src/lib.rs:
crates/tco/src/explore.rs:
crates/tco/src/factors.rs:
crates/tco/src/model.rs:
crates/tco/src/yield_model.rs:
