/root/repo/target/release/deps/uniserver_bench-3eba4a6067e938d9.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fleet.rs crates/bench/src/render.rs

/root/repo/target/release/deps/libuniserver_bench-3eba4a6067e938d9.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fleet.rs crates/bench/src/render.rs

/root/repo/target/release/deps/libuniserver_bench-3eba4a6067e938d9.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fleet.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fleet.rs:
crates/bench/src/render.rs:
