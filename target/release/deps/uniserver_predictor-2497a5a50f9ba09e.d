/root/repo/target/release/deps/uniserver_predictor-2497a5a50f9ba09e.d: crates/predictor/src/lib.rs crates/predictor/src/advisor.rs crates/predictor/src/bayes.rs crates/predictor/src/features.rs crates/predictor/src/harness.rs crates/predictor/src/logistic.rs

/root/repo/target/release/deps/libuniserver_predictor-2497a5a50f9ba09e.rlib: crates/predictor/src/lib.rs crates/predictor/src/advisor.rs crates/predictor/src/bayes.rs crates/predictor/src/features.rs crates/predictor/src/harness.rs crates/predictor/src/logistic.rs

/root/repo/target/release/deps/libuniserver_predictor-2497a5a50f9ba09e.rmeta: crates/predictor/src/lib.rs crates/predictor/src/advisor.rs crates/predictor/src/bayes.rs crates/predictor/src/features.rs crates/predictor/src/harness.rs crates/predictor/src/logistic.rs

crates/predictor/src/lib.rs:
crates/predictor/src/advisor.rs:
crates/predictor/src/bayes.rs:
crates/predictor/src/features.rs:
crates/predictor/src/harness.rs:
crates/predictor/src/logistic.rs:
