/root/repo/target/release/deps/experiment_shapes-cb837bd736f0454e.d: tests/experiment_shapes.rs

/root/repo/target/release/deps/experiment_shapes-cb837bd736f0454e: tests/experiment_shapes.rs

tests/experiment_shapes.rs:
