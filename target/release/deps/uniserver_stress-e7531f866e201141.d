/root/repo/target/release/deps/uniserver_stress-e7531f866e201141.d: crates/stress/src/lib.rs crates/stress/src/campaign.rs crates/stress/src/genetic.rs crates/stress/src/kernels.rs crates/stress/src/patterns.rs

/root/repo/target/release/deps/uniserver_stress-e7531f866e201141: crates/stress/src/lib.rs crates/stress/src/campaign.rs crates/stress/src/genetic.rs crates/stress/src/kernels.rs crates/stress/src/patterns.rs

crates/stress/src/lib.rs:
crates/stress/src/campaign.rs:
crates/stress/src/genetic.rs:
crates/stress/src/kernels.rs:
crates/stress/src/patterns.rs:
