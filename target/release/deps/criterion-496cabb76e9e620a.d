/root/repo/target/release/deps/criterion-496cabb76e9e620a.d: compat/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-496cabb76e9e620a: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
