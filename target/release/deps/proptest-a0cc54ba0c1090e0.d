/root/repo/target/release/deps/proptest-a0cc54ba0c1090e0.d: compat/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-a0cc54ba0c1090e0: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
