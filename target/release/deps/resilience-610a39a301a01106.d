/root/repo/target/release/deps/resilience-610a39a301a01106.d: tests/resilience.rs

/root/repo/target/release/deps/resilience-610a39a301a01106: tests/resilience.rs

tests/resilience.rs:
