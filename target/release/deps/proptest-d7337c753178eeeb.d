/root/repo/target/release/deps/proptest-d7337c753178eeeb.d: compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d7337c753178eeeb.rlib: compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d7337c753178eeeb.rmeta: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
