/root/repo/target/release/deps/uniserver_bench-63686a634c5fb25a.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fleet.rs crates/bench/src/render.rs

/root/repo/target/release/deps/uniserver_bench-63686a634c5fb25a: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fleet.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fleet.rs:
crates/bench/src/render.rs:
