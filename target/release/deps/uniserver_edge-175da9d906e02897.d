/root/repo/target/release/deps/uniserver_edge-175da9d906e02897.d: crates/edge/src/lib.rs crates/edge/src/dvfs.rs crates/edge/src/latency.rs

/root/repo/target/release/deps/libuniserver_edge-175da9d906e02897.rlib: crates/edge/src/lib.rs crates/edge/src/dvfs.rs crates/edge/src/latency.rs

/root/repo/target/release/deps/libuniserver_edge-175da9d906e02897.rmeta: crates/edge/src/lib.rs crates/edge/src/dvfs.rs crates/edge/src/latency.rs

crates/edge/src/lib.rs:
crates/edge/src/dvfs.rs:
crates/edge/src/latency.rs:
