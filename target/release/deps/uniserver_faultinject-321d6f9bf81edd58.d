/root/repo/target/release/deps/uniserver_faultinject-321d6f9bf81edd58.d: crates/faultinject/src/lib.rs

/root/repo/target/release/deps/libuniserver_faultinject-321d6f9bf81edd58.rlib: crates/faultinject/src/lib.rs

/root/repo/target/release/deps/libuniserver_faultinject-321d6f9bf81edd58.rmeta: crates/faultinject/src/lib.rs

crates/faultinject/src/lib.rs:
