/root/repo/target/release/deps/determinism-e4f1c0d55899c436.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-e4f1c0d55899c436: tests/determinism.rs

tests/determinism.rs:
