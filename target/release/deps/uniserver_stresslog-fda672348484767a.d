/root/repo/target/release/deps/uniserver_stresslog-fda672348484767a.d: crates/stresslog/src/lib.rs

/root/repo/target/release/deps/uniserver_stresslog-fda672348484767a: crates/stresslog/src/lib.rs

crates/stresslog/src/lib.rs:
