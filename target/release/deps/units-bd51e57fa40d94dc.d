/root/repo/target/release/deps/units-bd51e57fa40d94dc.d: crates/units/tests/units.rs

/root/repo/target/release/deps/units-bd51e57fa40d94dc: crates/units/tests/units.rs

crates/units/tests/units.rs:
