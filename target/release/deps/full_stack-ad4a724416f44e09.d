/root/repo/target/release/deps/full_stack-ad4a724416f44e09.d: tests/full_stack.rs

/root/repo/target/release/deps/full_stack-ad4a724416f44e09: tests/full_stack.rs

tests/full_stack.rs:
