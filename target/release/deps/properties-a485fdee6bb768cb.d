/root/repo/target/release/deps/properties-a485fdee6bb768cb.d: tests/properties.rs

/root/repo/target/release/deps/properties-a485fdee6bb768cb: tests/properties.rs

tests/properties.rs:
