/root/repo/target/release/deps/uniserver-1a1969d42617abea.d: src/lib.rs

/root/repo/target/release/deps/libuniserver-1a1969d42617abea.rlib: src/lib.rs

/root/repo/target/release/deps/libuniserver-1a1969d42617abea.rmeta: src/lib.rs

src/lib.rs:
