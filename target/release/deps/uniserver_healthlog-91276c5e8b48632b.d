/root/repo/target/release/deps/uniserver_healthlog-91276c5e8b48632b.d: crates/healthlog/src/lib.rs crates/healthlog/src/daemon.rs crates/healthlog/src/ledger.rs crates/healthlog/src/vector.rs

/root/repo/target/release/deps/uniserver_healthlog-91276c5e8b48632b: crates/healthlog/src/lib.rs crates/healthlog/src/daemon.rs crates/healthlog/src/ledger.rs crates/healthlog/src/vector.rs

crates/healthlog/src/lib.rs:
crates/healthlog/src/daemon.rs:
crates/healthlog/src/ledger.rs:
crates/healthlog/src/vector.rs:
