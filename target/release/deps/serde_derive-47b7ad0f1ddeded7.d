/root/repo/target/release/deps/serde_derive-47b7ad0f1ddeded7.d: compat/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-47b7ad0f1ddeded7: compat/serde_derive/src/lib.rs

compat/serde_derive/src/lib.rs:
