/root/repo/target/release/deps/uniserver_tco-a739e2cc4b11a7ce.d: crates/tco/src/lib.rs crates/tco/src/explore.rs crates/tco/src/factors.rs crates/tco/src/model.rs crates/tco/src/yield_model.rs

/root/repo/target/release/deps/uniserver_tco-a739e2cc4b11a7ce: crates/tco/src/lib.rs crates/tco/src/explore.rs crates/tco/src/factors.rs crates/tco/src/model.rs crates/tco/src/yield_model.rs

crates/tco/src/lib.rs:
crates/tco/src/explore.rs:
crates/tco/src/factors.rs:
crates/tco/src/model.rs:
crates/tco/src/yield_model.rs:
