/root/repo/target/release/deps/repro-e66ed83299e92c8c.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-e66ed83299e92c8c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
