/root/repo/target/release/deps/uniserver_stresslog-c94cfdfcda5c927e.d: crates/stresslog/src/lib.rs

/root/repo/target/release/deps/libuniserver_stresslog-c94cfdfcda5c927e.rlib: crates/stresslog/src/lib.rs

/root/repo/target/release/deps/libuniserver_stresslog-c94cfdfcda5c927e.rmeta: crates/stresslog/src/lib.rs

crates/stresslog/src/lib.rs:
