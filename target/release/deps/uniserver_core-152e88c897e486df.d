/root/repo/target/release/deps/uniserver_core-152e88c897e486df.d: crates/core/src/lib.rs crates/core/src/ecosystem.rs crates/core/src/eop.rs crates/core/src/optimizer.rs crates/core/src/security.rs

/root/repo/target/release/deps/libuniserver_core-152e88c897e486df.rlib: crates/core/src/lib.rs crates/core/src/ecosystem.rs crates/core/src/eop.rs crates/core/src/optimizer.rs crates/core/src/security.rs

/root/repo/target/release/deps/libuniserver_core-152e88c897e486df.rmeta: crates/core/src/lib.rs crates/core/src/ecosystem.rs crates/core/src/eop.rs crates/core/src/optimizer.rs crates/core/src/security.rs

crates/core/src/lib.rs:
crates/core/src/ecosystem.rs:
crates/core/src/eop.rs:
crates/core/src/optimizer.rs:
crates/core/src/security.rs:
