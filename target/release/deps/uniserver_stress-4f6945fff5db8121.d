/root/repo/target/release/deps/uniserver_stress-4f6945fff5db8121.d: crates/stress/src/lib.rs crates/stress/src/campaign.rs crates/stress/src/genetic.rs crates/stress/src/kernels.rs crates/stress/src/patterns.rs

/root/repo/target/release/deps/libuniserver_stress-4f6945fff5db8121.rlib: crates/stress/src/lib.rs crates/stress/src/campaign.rs crates/stress/src/genetic.rs crates/stress/src/kernels.rs crates/stress/src/patterns.rs

/root/repo/target/release/deps/libuniserver_stress-4f6945fff5db8121.rmeta: crates/stress/src/lib.rs crates/stress/src/campaign.rs crates/stress/src/genetic.rs crates/stress/src/kernels.rs crates/stress/src/patterns.rs

crates/stress/src/lib.rs:
crates/stress/src/campaign.rs:
crates/stress/src/genetic.rs:
crates/stress/src/kernels.rs:
crates/stress/src/patterns.rs:
