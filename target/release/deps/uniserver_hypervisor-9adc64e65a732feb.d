/root/repo/target/release/deps/uniserver_hypervisor-9adc64e65a732feb.d: crates/hypervisor/src/lib.rs crates/hypervisor/src/hypervisor.rs crates/hypervisor/src/memdomain.rs crates/hypervisor/src/objects.rs crates/hypervisor/src/protect.rs crates/hypervisor/src/vm.rs

/root/repo/target/release/deps/libuniserver_hypervisor-9adc64e65a732feb.rlib: crates/hypervisor/src/lib.rs crates/hypervisor/src/hypervisor.rs crates/hypervisor/src/memdomain.rs crates/hypervisor/src/objects.rs crates/hypervisor/src/protect.rs crates/hypervisor/src/vm.rs

/root/repo/target/release/deps/libuniserver_hypervisor-9adc64e65a732feb.rmeta: crates/hypervisor/src/lib.rs crates/hypervisor/src/hypervisor.rs crates/hypervisor/src/memdomain.rs crates/hypervisor/src/objects.rs crates/hypervisor/src/protect.rs crates/hypervisor/src/vm.rs

crates/hypervisor/src/lib.rs:
crates/hypervisor/src/hypervisor.rs:
crates/hypervisor/src/memdomain.rs:
crates/hypervisor/src/objects.rs:
crates/hypervisor/src/protect.rs:
crates/hypervisor/src/vm.rs:
