/root/repo/target/release/deps/uniserver_faultinject-1b941535cc5b2667.d: crates/faultinject/src/lib.rs

/root/repo/target/release/deps/uniserver_faultinject-1b941535cc5b2667: crates/faultinject/src/lib.rs

crates/faultinject/src/lib.rs:
