/root/repo/target/release/deps/uniserver_platform-3492353ac465e277.d: crates/platform/src/lib.rs crates/platform/src/cache.rs crates/platform/src/dram.rs crates/platform/src/mca.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/part.rs crates/platform/src/pmu.rs crates/platform/src/raidr.rs crates/platform/src/sensors.rs crates/platform/src/workload.rs

/root/repo/target/release/deps/libuniserver_platform-3492353ac465e277.rlib: crates/platform/src/lib.rs crates/platform/src/cache.rs crates/platform/src/dram.rs crates/platform/src/mca.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/part.rs crates/platform/src/pmu.rs crates/platform/src/raidr.rs crates/platform/src/sensors.rs crates/platform/src/workload.rs

/root/repo/target/release/deps/libuniserver_platform-3492353ac465e277.rmeta: crates/platform/src/lib.rs crates/platform/src/cache.rs crates/platform/src/dram.rs crates/platform/src/mca.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/part.rs crates/platform/src/pmu.rs crates/platform/src/raidr.rs crates/platform/src/sensors.rs crates/platform/src/workload.rs

crates/platform/src/lib.rs:
crates/platform/src/cache.rs:
crates/platform/src/dram.rs:
crates/platform/src/mca.rs:
crates/platform/src/msr.rs:
crates/platform/src/node.rs:
crates/platform/src/part.rs:
crates/platform/src/pmu.rs:
crates/platform/src/raidr.rs:
crates/platform/src/sensors.rs:
crates/platform/src/workload.rs:
