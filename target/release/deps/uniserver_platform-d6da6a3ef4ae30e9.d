/root/repo/target/release/deps/uniserver_platform-d6da6a3ef4ae30e9.d: crates/platform/src/lib.rs crates/platform/src/cache.rs crates/platform/src/dram.rs crates/platform/src/mca.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/part.rs crates/platform/src/pmu.rs crates/platform/src/raidr.rs crates/platform/src/sensors.rs crates/platform/src/workload.rs

/root/repo/target/release/deps/uniserver_platform-d6da6a3ef4ae30e9: crates/platform/src/lib.rs crates/platform/src/cache.rs crates/platform/src/dram.rs crates/platform/src/mca.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/part.rs crates/platform/src/pmu.rs crates/platform/src/raidr.rs crates/platform/src/sensors.rs crates/platform/src/workload.rs

crates/platform/src/lib.rs:
crates/platform/src/cache.rs:
crates/platform/src/dram.rs:
crates/platform/src/mca.rs:
crates/platform/src/msr.rs:
crates/platform/src/node.rs:
crates/platform/src/part.rs:
crates/platform/src/pmu.rs:
crates/platform/src/raidr.rs:
crates/platform/src/sensors.rs:
crates/platform/src/workload.rs:
