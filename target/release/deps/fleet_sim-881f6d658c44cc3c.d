/root/repo/target/release/deps/fleet_sim-881f6d658c44cc3c.d: crates/bench/src/bin/fleet_sim.rs

/root/repo/target/release/deps/fleet_sim-881f6d658c44cc3c: crates/bench/src/bin/fleet_sim.rs

crates/bench/src/bin/fleet_sim.rs:
