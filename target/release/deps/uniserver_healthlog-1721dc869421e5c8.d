/root/repo/target/release/deps/uniserver_healthlog-1721dc869421e5c8.d: crates/healthlog/src/lib.rs crates/healthlog/src/daemon.rs crates/healthlog/src/ledger.rs crates/healthlog/src/vector.rs

/root/repo/target/release/deps/libuniserver_healthlog-1721dc869421e5c8.rlib: crates/healthlog/src/lib.rs crates/healthlog/src/daemon.rs crates/healthlog/src/ledger.rs crates/healthlog/src/vector.rs

/root/repo/target/release/deps/libuniserver_healthlog-1721dc869421e5c8.rmeta: crates/healthlog/src/lib.rs crates/healthlog/src/daemon.rs crates/healthlog/src/ledger.rs crates/healthlog/src/vector.rs

crates/healthlog/src/lib.rs:
crates/healthlog/src/daemon.rs:
crates/healthlog/src/ledger.rs:
crates/healthlog/src/vector.rs:
