/root/repo/target/release/deps/serde-ab91905dee62fde9.d: compat/serde/src/lib.rs

/root/repo/target/release/deps/serde-ab91905dee62fde9: compat/serde/src/lib.rs

compat/serde/src/lib.rs:
