/root/repo/target/release/deps/uniserver_silicon-b1ee6fd50b0d1052.d: crates/silicon/src/lib.rs crates/silicon/src/aging.rs crates/silicon/src/binning.rs crates/silicon/src/comparisons.rs crates/silicon/src/droop.rs crates/silicon/src/ecc.rs crates/silicon/src/faults.rs crates/silicon/src/guardband.rs crates/silicon/src/math.rs crates/silicon/src/power.rs crates/silicon/src/retention.rs crates/silicon/src/rng.rs crates/silicon/src/variation.rs crates/silicon/src/vmin.rs

/root/repo/target/release/deps/libuniserver_silicon-b1ee6fd50b0d1052.rlib: crates/silicon/src/lib.rs crates/silicon/src/aging.rs crates/silicon/src/binning.rs crates/silicon/src/comparisons.rs crates/silicon/src/droop.rs crates/silicon/src/ecc.rs crates/silicon/src/faults.rs crates/silicon/src/guardband.rs crates/silicon/src/math.rs crates/silicon/src/power.rs crates/silicon/src/retention.rs crates/silicon/src/rng.rs crates/silicon/src/variation.rs crates/silicon/src/vmin.rs

/root/repo/target/release/deps/libuniserver_silicon-b1ee6fd50b0d1052.rmeta: crates/silicon/src/lib.rs crates/silicon/src/aging.rs crates/silicon/src/binning.rs crates/silicon/src/comparisons.rs crates/silicon/src/droop.rs crates/silicon/src/ecc.rs crates/silicon/src/faults.rs crates/silicon/src/guardband.rs crates/silicon/src/math.rs crates/silicon/src/power.rs crates/silicon/src/retention.rs crates/silicon/src/rng.rs crates/silicon/src/variation.rs crates/silicon/src/vmin.rs

crates/silicon/src/lib.rs:
crates/silicon/src/aging.rs:
crates/silicon/src/binning.rs:
crates/silicon/src/comparisons.rs:
crates/silicon/src/droop.rs:
crates/silicon/src/ecc.rs:
crates/silicon/src/faults.rs:
crates/silicon/src/guardband.rs:
crates/silicon/src/math.rs:
crates/silicon/src/power.rs:
crates/silicon/src/retention.rs:
crates/silicon/src/rng.rs:
crates/silicon/src/variation.rs:
crates/silicon/src/vmin.rs:
