/root/repo/target/release/deps/uniserver_units-bdeb0aefffeaad83.d: crates/units/src/lib.rs crates/units/src/data.rs crates/units/src/electrical.rs crates/units/src/energy.rs crates/units/src/frequency.rs crates/units/src/ratio.rs crates/units/src/thermal.rs crates/units/src/time.rs

/root/repo/target/release/deps/uniserver_units-bdeb0aefffeaad83: crates/units/src/lib.rs crates/units/src/data.rs crates/units/src/electrical.rs crates/units/src/energy.rs crates/units/src/frequency.rs crates/units/src/ratio.rs crates/units/src/thermal.rs crates/units/src/time.rs

crates/units/src/lib.rs:
crates/units/src/data.rs:
crates/units/src/electrical.rs:
crates/units/src/energy.rs:
crates/units/src/frequency.rs:
crates/units/src/ratio.rs:
crates/units/src/thermal.rs:
crates/units/src/time.rs:
