/root/repo/target/release/deps/uniserver_core-463e02a13a2fc0e8.d: crates/core/src/lib.rs crates/core/src/ecosystem.rs crates/core/src/eop.rs crates/core/src/optimizer.rs crates/core/src/security.rs

/root/repo/target/release/deps/uniserver_core-463e02a13a2fc0e8: crates/core/src/lib.rs crates/core/src/ecosystem.rs crates/core/src/eop.rs crates/core/src/optimizer.rs crates/core/src/security.rs

crates/core/src/lib.rs:
crates/core/src/ecosystem.rs:
crates/core/src/eop.rs:
crates/core/src/optimizer.rs:
crates/core/src/security.rs:
