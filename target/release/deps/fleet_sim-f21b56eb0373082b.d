/root/repo/target/release/deps/fleet_sim-f21b56eb0373082b.d: crates/bench/src/bin/fleet_sim.rs

/root/repo/target/release/deps/fleet_sim-f21b56eb0373082b: crates/bench/src/bin/fleet_sim.rs

crates/bench/src/bin/fleet_sim.rs:
