/root/repo/target/release/deps/uniserver_hypervisor-fe10d701f05b8b56.d: crates/hypervisor/src/lib.rs crates/hypervisor/src/hypervisor.rs crates/hypervisor/src/memdomain.rs crates/hypervisor/src/objects.rs crates/hypervisor/src/protect.rs crates/hypervisor/src/vm.rs

/root/repo/target/release/deps/uniserver_hypervisor-fe10d701f05b8b56: crates/hypervisor/src/lib.rs crates/hypervisor/src/hypervisor.rs crates/hypervisor/src/memdomain.rs crates/hypervisor/src/objects.rs crates/hypervisor/src/protect.rs crates/hypervisor/src/vm.rs

crates/hypervisor/src/lib.rs:
crates/hypervisor/src/hypervisor.rs:
crates/hypervisor/src/memdomain.rs:
crates/hypervisor/src/objects.rs:
crates/hypervisor/src/protect.rs:
crates/hypervisor/src/vm.rs:
