/root/repo/target/release/examples/quickstart-1b51abeb419796da.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-1b51abeb419796da: examples/quickstart.rs

examples/quickstart.rs:
