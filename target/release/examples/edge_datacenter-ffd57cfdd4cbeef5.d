/root/repo/target/release/examples/edge_datacenter-ffd57cfdd4cbeef5.d: examples/edge_datacenter.rs

/root/repo/target/release/examples/edge_datacenter-ffd57cfdd4cbeef5: examples/edge_datacenter.rs

examples/edge_datacenter.rs:
