/root/repo/target/release/examples/undervolt_characterization-40e48c3d0a15e132.d: examples/undervolt_characterization.rs

/root/repo/target/release/examples/undervolt_characterization-40e48c3d0a15e132: examples/undervolt_characterization.rs

examples/undervolt_characterization.rs:
