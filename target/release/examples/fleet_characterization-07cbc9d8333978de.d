/root/repo/target/release/examples/fleet_characterization-07cbc9d8333978de.d: examples/fleet_characterization.rs

/root/repo/target/release/examples/fleet_characterization-07cbc9d8333978de: examples/fleet_characterization.rs

examples/fleet_characterization.rs:
