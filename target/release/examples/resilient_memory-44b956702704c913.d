/root/repo/target/release/examples/resilient_memory-44b956702704c913.d: examples/resilient_memory.rs

/root/repo/target/release/examples/resilient_memory-44b956702704c913: examples/resilient_memory.rs

examples/resilient_memory.rs:
